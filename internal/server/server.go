// Package server implements emsd, the long-running matching service: an
// HTTP/JSON front end over the ems engine with an async job queue, a
// bounded worker pool, a content-addressed LRU result cache, and a
// concurrent-safe metrics surface.
//
// Request flow: POST /v1/jobs parses the two logs and options, computes the
// content key, and either (a) answers from the cache, (b) coalesces onto an
// identical in-flight job, or (c) enqueues a fresh computation on the pool.
// Clients poll GET /v1/jobs/{id}, fetch GET /v1/jobs/{id}/result, and may
// abort with DELETE /v1/jobs/{id}. Jobs run under per-job wall-clock
// deadlines, panics inside a computation fail only that job, and a full
// queue sheds new submissions instead of accepting unbounded work. Shutdown
// drains running jobs within a grace period, then interrupts the stragglers
// in-engine.
//
// With Config.DataDir set the server is additionally crash-safe: jobs are
// journaled to a write-ahead log, running computations persist periodic
// engine checkpoints, and results are stored on disk. A restart on the same
// directory replays the journal, re-enqueues unfinished jobs (resuming from
// their last checkpoint), and serves persisted results under the original
// job IDs.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"sync"

	"repro/ems"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
)

// Config sizes a Server.
type Config struct {
	// Workers bounds concurrent match computations; <= 0 uses GOMAXPROCS.
	Workers int
	// EngineWorkers is the per-job worker budget of the core iteration
	// engine (ems.WithWorkers): each running job may split its similarity
	// rounds across this many goroutines. 0 derives it from the machine
	// budget as max(1, GOMAXPROCS/Workers), so the job pool and the engine
	// pool compose to roughly GOMAXPROCS total instead of multiplying.
	// Negative forces the serial engine. Engine workers never change
	// results, so the result cache is shared across settings.
	EngineWorkers int
	// CacheSize bounds the result cache (entries); 0 uses the default
	// (128), negative disables caching.
	CacheSize int
	// MaxJobs bounds the job registry; once exceeded, the oldest terminal
	// jobs are forgotten (their IDs 404 afterwards). 0 uses the default
	// (10000).
	MaxJobs int
	// AllowPaths permits LogInput.Path (reading logs from the server's
	// filesystem). Off by default: inline-only keeps the service safe to
	// expose beyond localhost.
	AllowPaths bool
	// JobTimeout is the default per-job wall-clock deadline, counted from
	// the moment a worker picks the job up. 0 means no default deadline.
	// Requests can override it via options.timeout_ms, clamped to
	// MaxJobTimeout. A job that exceeds its deadline fails with a
	// "deadline exceeded" error; it does not count as cancelled.
	JobTimeout time.Duration
	// MaxJobTimeout caps every effective job deadline, including requests
	// that ask for no deadline at all. 0 means no cap.
	MaxJobTimeout time.Duration
	// MaxQueueDepth bounds the number of queued-but-not-running jobs; a
	// submission that would exceed it is shed with ErrQueueFull (HTTP 503 +
	// Retry-After) instead of growing the queue without bound. <= 0 is
	// unbounded. Cache hits and coalesced submissions are always served.
	MaxQueueDepth int
	// MaxBodyBytes bounds a submission body (inline logs included); 0 uses
	// the default 64 MiB. Oversized requests get HTTP 413.
	MaxBodyBytes int64
	// DataDir enables crash-safe persistence: submitted jobs are journaled
	// to a write-ahead log under this directory together with their request
	// bodies, periodic engine checkpoints, and finished results. On the next
	// start with the same directory, the journal is replayed: unfinished jobs
	// are re-enqueued (running ones resume from their last checkpoint) and
	// persisted results are served again. Empty disables persistence.
	DataDir string
	// CheckpointEvery is the engine-round interval between persisted
	// checkpoints of a running job; <= 0 uses the default (16). Only
	// meaningful with DataDir. Smaller values lose less work on a crash but
	// cost more I/O per round.
	CheckpointEvery int
	// JobRetries bounds in-process retries of a job whose computation
	// panicked: such a failure is not a property of the input (deterministic
	// input errors are never retried), so the job is re-enqueued with backoff
	// up to this many times before failing. 0 disables retries. Only
	// meaningful with DataDir (the retry resumes from the last checkpoint).
	JobRetries int
	// RetryBackoff is the delay before the first retry, doubling with each
	// further attempt; <= 0 uses the default (50ms).
	RetryBackoff time.Duration
	// SlowJobThreshold arms the slow-job log: a computed job whose wall time
	// reaches the threshold gets its span timeline dumped at WARN level so
	// the slow phase is identifiable after the fact. 0 disables the dump.
	SlowJobThreshold time.Duration
	// TraceSample is the fraction of traces published to the queryable trace
	// store (GET /v1/traces). Sampling hashes the trace ID, so every cluster
	// node keeps the same traces. 0 means store everything; negative stores
	// nothing.
	TraceSample float64
	// TraceRetain bounds the trace store (traces per node); <= 0 uses the
	// default (512).
	TraceRetain int
	// NodeID names this node in a cluster. It feeds the consistent-hash ring
	// (placement hashes IDs, not addresses), qualifies forwarded job IDs,
	// and appears in /healthz, /v1/version and /v1/cluster. Empty defaults
	// to "emsd".
	NodeID string
	// Cluster joins this node to an emsd cluster; nil runs standalone.
	// Standalone nodes still serve POST /v1/batch — the coordinator just
	// places every pair locally.
	Cluster *ClusterConfig
	// MaxBatchPairs bounds the pair count of one POST /v1/batch (grid
	// product or explicit list); <= 0 uses the default (4096).
	MaxBatchPairs int
	// MemBudget arms the resource governor: every fresh job's peak engine
	// memory is predicted before allocation (ems.EstimateCost) and admitted
	// against this global byte budget, so queued+running work is bounded by
	// predicted bytes, not job count. A job whose prediction alone exceeds
	// the budget is rejected up front with *ems.TooLargeError (HTTP 413); a
	// job that merely doesn't fit right now is shed with ErrSaturated
	// (HTTP 503 + Retry-After). Past PressureFraction of the budget the
	// degradation ladder kicks in. <= 0 disables the governor.
	MemBudget int64
	// PressureFraction is the committed fraction of MemBudget at which the
	// node reports "pressured" and starts degrading jobs; <= 0 or > 1 uses
	// the default 0.75.
	PressureFraction float64
	// Log receives operational messages as structured records (contained job
	// panics, persistence failures, slow-job timelines). nil uses
	// slog.Default.
	Log *slog.Logger
}

// requestError marks a client-side (HTTP 400) submission failure.
type requestError struct{ err error }

func (e *requestError) Error() string { return e.err.Error() }
func (e *requestError) Unwrap() error { return e.err }

// IsRequestError reports whether err stems from a malformed submission
// rather than a server-side failure.
func IsRequestError(err error) bool {
	var re *requestError
	return errors.As(err, &re)
}

// Server is the emsd service state. Create with New, expose via Handler,
// stop with Shutdown.
type Server struct {
	cfg     Config
	metrics *Metrics
	cache   *resultCache
	pool    *pool
	persist *persister // nil without DataDir
	obs     *serverObs
	cluster *serverCluster
	gov     *governor // nil without MemBudget
	traces  *obs.TraceStore
	flight  *obs.FlightRecorder

	// govLast is the governor state the flight recorder last saw; transition
	// events are emitted on change.
	govLast atomic.Value // GovernorState

	ctx    context.Context
	cancel context.CancelFunc

	// batchWG tracks running batch coordinators; Shutdown waits for them
	// after cancelling the base context.
	batchWG sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	jobOrder []string // insertion order, for bounded retention
	inflight map[string]*Job
	nextID   uint64
	closed   bool
}

// New creates a Server and starts its worker pool. With Config.DataDir set
// it also opens (or recovers) the data directory: the job journal is
// replayed, unfinished jobs are re-enqueued — running ones resume from their
// last persisted checkpoint — and persisted results are reloaded on demand.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.EngineWorkers == 0 {
		if cfg.EngineWorkers = runtime.GOMAXPROCS(0) / cfg.Workers; cfg.EngineWorkers < 1 {
			cfg.EngineWorkers = 1
		}
	}
	if cfg.EngineWorkers < 0 {
		cfg.EngineWorkers = 1
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 128
	}
	if cfg.CacheSize < 0 {
		cfg.CacheSize = 0
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 10000
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.Log == nil {
		cfg.Log = slog.Default()
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 16
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.NodeID == "" {
		cfg.NodeID = "emsd"
	}
	sc, err := newServerCluster(cfg.NodeID, cfg.Cluster)
	if err != nil {
		return nil, err
	}
	var p *persister
	if cfg.DataDir != "" {
		var err error
		if p, err = openPersister(cfg.DataDir, cfg.Log); err != nil {
			return nil, err
		}
	}
	sample := cfg.TraceSample
	switch {
	case sample == 0:
		sample = 1 // store everything by default
	case sample < 0:
		sample = 0
	}
	flightDir := ""
	if cfg.DataDir != "" {
		flightDir = filepath.Join(cfg.DataDir, "flightrec")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		metrics:  &Metrics{},
		cache:    newResultCache(cfg.CacheSize),
		persist:  p,
		cluster:  sc,
		gov:      newGovernor(cfg.MemBudget, cfg.PressureFraction),
		traces:   obs.NewTraceStore(cfg.TraceRetain, sample),
		flight:   obs.NewFlightRecorder(256, flightDir, cfg.NodeID),
		ctx:      ctx,
		cancel:   cancel,
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	s.govLast.Store(s.governorState())
	if p != nil {
		s.cache.onEvict = p.deleteResult
	}
	s.pool = newPool(cfg.Workers, cfg.MaxQueueDepth, s.runJob)
	// The registry's gauge closures read the pool/cache/persister, so it is
	// built only once those exist — and before recovery, whose re-enqueued
	// jobs already count.
	s.obs = newServerObs(s)
	if sc.clustered() {
		// Health transitions drive the per-peer up/down gauge; the background
		// prober keeps the view fresh between requests and stops with s.ctx.
		clients := make([]*cluster.Client, 0, len(sc.clients))
		for _, cl := range sc.clients {
			clients = append(clients, cl)
		}
		sc.health = cluster.NewHealth(clients, func(id string, up bool) {
			s.obs.peerUpGauge(id, up)
		})
		go sc.health.Run(s.ctx, sc.cfg.ProbeInterval)
	}
	if p != nil {
		s.recoverJobs()
	}
	return s, nil
}

// Registry exposes the server's Prometheus registry (also served at
// GET /metrics) so embedders can add their own instruments.
func (s *Server) Registry() *obs.Registry { return s.obs.reg }

// errCancelledByClient is the cancellation cause installed by Cancel; runJob
// uses it to distinguish a client abort from shutdown or a deadline.
var errCancelledByClient = errors.New("server: job cancelled by client")

// resolveTimeout derives a job's effective deadline from the server default
// and the request override, clamping to the configured maximum.
func (s *Server) resolveTimeout(overrideMS *float64) (time.Duration, error) {
	d := s.cfg.JobTimeout
	if overrideMS != nil {
		if *overrideMS < 0 {
			return 0, fmt.Errorf("options: timeout_ms must be >= 0, got %g", *overrideMS)
		}
		d = time.Duration(*overrideMS * float64(time.Millisecond))
	}
	if max := s.cfg.MaxJobTimeout; max > 0 && (d <= 0 || d > max) {
		d = max
	}
	return d, nil
}

// preparedJob is a validated, resolved request: everything a worker needs
// to run the computation. Submit builds one per submission; recovery builds
// one from each persisted request body.
type preparedJob struct {
	l1, l2  *ems.Log
	opts    []ems.Option
	key     string
	timeout time.Duration
	cost    *ems.Cost // predicted peak footprint; nil when the governor is off
}

// prepare validates a request and resolves it into a preparedJob. Errors are
// the client's fault (the request is malformed or disallowed).
func (s *Server) prepare(req JobRequest) (*preparedJob, error) {
	if (req.Log1.Path != "" || req.Log2.Path != "") && !s.cfg.AllowPaths {
		return nil, fmt.Errorf("log paths are disabled on this server (start emsd with -allow-paths)")
	}
	l1, skip1, err := req.Log1.resolve("log1")
	if err != nil {
		return nil, err
	}
	l2, skip2, err := req.Log2.resolve("log2")
	if err != nil {
		return nil, err
	}
	if n := skip1 + skip2; n > 0 {
		s.metrics.IngestSkipped(uint64(n))
	}
	opts, optKey, err := req.Options.build()
	if err != nil {
		return nil, err
	}
	timeout, err := s.resolveTimeout(req.Options.TimeoutMS)
	if err != nil {
		return nil, err
	}
	// The engine-worker budget is appended after the cache key is derived:
	// worker counts never change results, so jobs submitted under different
	// budgets still coalesce and share cache entries.
	opts = append(opts, ems.WithWorkers(s.cfg.EngineWorkers))
	pj := &preparedJob{l1: l1, l2: l2, opts: opts, key: CacheKey(l1, l2, optKey), timeout: timeout}
	if s.gov != nil {
		// The prediction only needs the dependency graphs (small next to the
		// matrices it predicts); an estimation failure just means the job is
		// admitted ungoverned rather than rejected.
		if c, cerr := ems.EstimateCost(pj.l1, pj.l2, opts...); cerr == nil {
			pj.cost = c
		}
	}
	return pj, nil
}

// Submit validates a request and returns its job handle. The job may
// already be terminal (cache hit). Errors satisfying IsRequestError are the
// client's fault; ErrShuttingDown means the server no longer accepts work.
func (s *Server) Submit(req JobRequest) (*Job, error) {
	return s.SubmitContext(context.Background(), req)
}

// SubmitContext is Submit with an observability context: a trace carried by
// ctx (obs.ContextWithTrace, installed by the HTTP middleware from the
// X-Request-ID header) is attached to the job, spans every phase of its
// computation, and surfaces in the job's views. A ctx without a trace gets a
// generated one. The ctx does NOT govern the job's lifetime — cancellation
// stays with DELETE /v1/jobs/{id} and server shutdown, so a client
// disconnecting after the 202 does not kill its job.
func (s *Server) SubmitContext(ctx context.Context, req JobRequest) (*Job, error) {
	tr := s.traceOrNew(ctx)
	endParse := tr.Span("parse")
	pj, err := s.prepare(req)
	endParse()
	if err != nil {
		s.metrics.Rejected()
		return nil, &requestError{err}
	}
	return s.submitPrepared(req, tr, pj)
}

// traceOrNew extracts the request trace from ctx, generating a node-stamped
// one (span-end histogram hook armed) for untraced callers.
func (s *Server) traceOrNew(ctx context.Context) *obs.Trace {
	if tr := obs.TraceFrom(ctx); tr != nil {
		return tr
	}
	return s.newTrace("")
}

// newTrace builds a trace owned by this node: node ID stamped and the
// span-end hook armed, matching what the HTTP middleware installs.
func (s *Server) newTrace(id string) *obs.Trace {
	tr := obs.NewTrace(id)
	tr.SetNode(s.cfg.NodeID)
	tr.OnSpanEnd(s.observeSpanEnd)
	return tr
}

// observeSpanEnd feeds the per-phase duration histogram from every ended
// span. Span names are bounded (fixed pipeline/engine phase names plus
// "peer:<node>"), so the phase label cardinality is bounded too.
func (s *Server) observeSpanEnd(sp *obs.Span) {
	degraded := strconv.FormatBool(sp.Trace().Attr("degraded") != "")
	s.obs.phaseDur.With(sp.Name(), degraded).Observe(sp.Duration().Seconds())
}

// recordTrace publishes a kept trace's current span snapshot to the trace
// store (unkept traces — polls, scrapes, trace queries — are never stored).
func (s *Server) recordTrace(tr *obs.Trace) {
	if tr != nil && tr.Kept() {
		s.traces.Record(tr)
	}
}

// noteGovernor emits a flight-recorder event when the governor's state
// changed since the last call.
func (s *Server) noteGovernor() {
	if s.gov == nil {
		return
	}
	cur := s.governorState()
	if prev := s.govLast.Swap(cur).(GovernorState); prev != cur {
		s.flight.Note("governor", "from", string(prev), "to", string(cur))
	}
}

// submitPrepared is the admission half of SubmitContext: cache lookup,
// coalescing, journaling, enqueue. Split out so the HTTP handler can decide
// on cluster forwarding between prepare (which computes the placement key)
// and local admission.
func (s *Server) submitPrepared(req JobRequest, tr *obs.Trace, pj *preparedJob) (*Job, error) {
	// Submissions are the traces worth keeping; the middleware publishes
	// kept traces to the store when the request ends, and completeJob
	// re-publishes once the engine spans exist.
	tr.Keep()
	// Degradation ladder: under memory pressure the request is rewritten one
	// or two rungs down before the cache lookup, so the degraded variant gets
	// its own cache key and coalesces with other degraded submissions.
	req, pj, rung, shed := s.applyLadder(req, pj)
	if shed {
		s.metrics.Shed()
		s.flight.Note("shed", "reason", "no-degrade-under-pressure")
		s.flight.Dump("shed", "reason", "no-degrade-under-pressure")
		return nil, ErrSaturated
	}
	if rung != "" {
		// Trace-level so the span-end hook labels every later span of this
		// job as degraded.
		tr.SetAttr("degraded", rung)
	}
	key := pj.key

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.metrics.Rejected()
		return nil, ErrShuttingDown
	}
	s.nextID++
	job := newJob(fmt.Sprintf("job-%06d", s.nextID))
	job.trace = tr
	s.registerLocked(job)
	s.metrics.Submitted()

	// (a) Completed result already cached.
	if res, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		s.metrics.CacheHit()
		tr.StartSpan("cache-hit").End()
		job.finish(StatusDone, res, "", 0, true)
		s.metrics.JobDone(StatusDone, 0, false)
		s.recordTrace(tr)
		return job, nil
	}
	// (b) Identical job already queued or running: coalesce.
	if leader, ok := s.inflight[key]; ok {
		leader.followers = append(leader.followers, job)
		s.mu.Unlock()
		s.metrics.CacheHit()
		return job, nil
	}
	// (c) Fresh computation: reserve the job's predicted footprint against
	// the memory budget before it can allocate anything. The reservation is
	// taken under s.mu together with registration, so a concurrent Cancel
	// cannot complete the job between admission and the cost being recorded.
	if s.gov != nil && pj.cost != nil {
		if aerr := s.gov.admit(pj.cost.Bytes); aerr != nil {
			s.mu.Unlock()
			if errors.Is(aerr, errJobTooLarge) {
				s.metrics.TooLarge()
				s.flight.Note("reject", "job", job.ID, "reason", "too-large")
				tle := &ems.TooLargeError{Predicted: *pj.cost, BudgetBytes: s.gov.budget}
				s.completeJob(job, StatusFailed, nil, tle.Error(), 0, false)
				return nil, tle
			}
			s.metrics.Shed()
			s.flight.Note("shed", "job", job.ID, "reason", "saturated")
			s.completeJob(job, StatusCancelled, nil, ErrSaturated.Error(), 0, false)
			s.flight.Dump("shed", "job", job.ID, "reason", "saturated")
			return nil, ErrSaturated
		}
		job.cost = pj.cost.Bytes
		s.noteGovernor()
	}
	if rung != "" {
		job.degraded = rung
		s.metrics.Degraded()
		s.flight.Note("degrade", "job", job.ID, "rung", rung)
		s.flight.Dump("degraded", "job", job.ID, "rung", rung)
	}
	job.key = key
	job.pair = ems.PairInput{Name: job.ID, Log1: pj.l1, Log2: pj.l2}
	job.opts = pj.opts
	job.composite = req.Options.Composite
	if !job.composite {
		job.prog = &progress{}
	}
	job.timeout = pj.timeout
	job.ctx, job.cancel = context.WithCancelCause(s.ctx)
	seq := s.nextID
	s.inflight[key] = job
	s.mu.Unlock()
	s.metrics.CacheMiss()
	// Queue depth is read before the enqueue so the flight event records the
	// depth this job saw at admission (reading after would race the pool).
	s.flight.Note("admit", "job", job.ID, "queue_depth", strconv.Itoa(s.pool.Depth()))
	if s.persist != nil {
		// Request file before submit record before enqueue: a job is only
		// ever journaled once its request body can outlive the process, and
		// only ever enqueued once its journal record is committed.
		job.seq = seq
		perr := s.persist.saveRequest(job.ID, req)
		if perr == nil {
			perr = s.persist.recordSubmit(jobState{
				ID: job.ID, Seq: seq, Key: key, Composite: job.composite,
			})
		}
		if perr != nil {
			s.jobLog(job).Error("job persistence failed", "error", perr)
			// The attrs stay path-free (the error text may embed the data
			// dir), so dumps replay byte-identically under a chaos seed.
			s.flight.Note("journal.error", "job", job.ID, "record", "submit")
			s.completeJob(job, StatusFailed, nil, "persistence failure: "+perr.Error(), 0, false)
			s.flight.Dump("persist-failure", "job", job.ID)
			return nil, fmt.Errorf("server: persist job: %w", perr)
		}
		s.flight.Note("journal.write", "job", job.ID, "record", "submit")
	}
	if err := s.pool.Enqueue(job); err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.metrics.Shed()
			s.flight.Note("shed", "job", job.ID, "reason", "queue-full")
			s.completeJob(job, StatusCancelled, nil, "job queue is full", 0, false)
			s.flight.Dump("shed", "job", job.ID, "reason", "queue-full")
			return nil, ErrQueueFull
		}
		s.completeJob(job, StatusCancelled, nil, "server shutting down", 0, false)
		return nil, ErrShuttingDown
	}
	return job, nil
}

// registerLocked adds the job to the registry, evicting the oldest terminal
// jobs beyond the retention bound. Caller holds s.mu.
func (s *Server) registerLocked(j *Job) {
	s.jobs[j.ID] = j
	s.jobOrder = append(s.jobOrder, j.ID)
	for len(s.jobs) > s.cfg.MaxJobs && len(s.jobOrder) > 0 {
		oldest := s.jobOrder[0]
		old, ok := s.jobs[oldest]
		if ok {
			switch old.Status() {
			case StatusDone, StatusFailed, StatusCancelled:
				delete(s.jobs, oldest)
			default:
				return // oldest still active: retain everything for now
			}
		}
		s.jobOrder = s.jobOrder[1:]
	}
}

// jobLog returns the server logger scoped to one job: every record carries
// the job_id and, when the job is traced, the trace_id.
func (s *Server) jobLog(j *Job) *slog.Logger {
	l := s.cfg.Log.With("job_id", j.ID)
	if j.trace != nil {
		l = l.With("trace_id", j.trace.ID())
	}
	return l
}

// runJob is the pool callback: compute one pair and complete the job. The
// computation runs under the job's cancellable context plus its wall-clock
// deadline (armed here, so queue time does not count), and a panic anywhere
// in it — including inside engine worker goroutines, which hand their panics
// back to this goroutine — fails only this job while the daemon keeps
// serving.
func (s *Server) runJob(j *Job) {
	if !j.setRunning() {
		return
	}
	j.attempt++
	if s.persist != nil && j.seq != 0 {
		if err := s.persist.recordStart(j.ID, j.attempt); err != nil {
			s.jobLog(j).Warn("journaling job start failed", "phase", "start", "error", err)
			s.flight.Note("journal.error", "job", j.ID, "record", "start")
		} else {
			s.flight.Note("journal.write", "job", j.ID, "record", "start")
		}
	}
	ctx := j.ctx
	if ctx == nil {
		ctx = s.ctx
	}
	var computeSpan *obs.Span
	if j.trace != nil {
		// Carry the trace into the engine: the ems facade arms its span hook
		// from the context, so graph-build/iterate/select phases land on the
		// job's timeline — nested under this job's compute span via the root.
		ctx = obs.ContextWithTrace(ctx, j.trace)
		computeSpan = j.trace.StartSpan("compute")
		computeSpan.SetAttr("job", j.ID)
	}
	if j.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.timeout)
		defer cancel()
	}
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			if computeSpan != nil {
				computeSpan.SetAttr("panic", "true")
				computeSpan.End()
			}
			s.metrics.Panicked()
			val, stack := r, debug.Stack()
			if ep, ok := r.(*core.EnginePanic); ok {
				val, stack = ep.Val, ep.Stack
			}
			s.jobLog(j).Error("job panicked (contained)", "phase", "compute",
				"panic", fmt.Sprint(val), "stack", string(stack))
			s.flight.Note("panic", "job", j.ID, "attempt", strconv.Itoa(j.attempt))
			s.flight.Dump("panic", "job", j.ID)
			// A panic is not a property of the input (those fail with an
			// error), so it is worth a bounded retry when configured — from
			// the last persisted checkpoint, not from scratch.
			if s.persist != nil && j.seq != 0 && j.attempt <= s.cfg.JobRetries {
				j.resume = s.persist.loadCheckpoint(j.ID)
				s.metrics.Retried()
				s.requeueWithBackoff(j)
				return
			}
			s.completeJob(j, StatusFailed, nil,
				fmt.Sprintf("internal error: computation panicked: %v", val), time.Since(start), false)
		}
	}()
	opts := append(append(make([]ems.Option, 0, len(j.opts)+4), j.opts...), ems.WithContext(ctx))
	if j.prog != nil {
		opts = append(opts, ems.WithProgress(j.prog.observe))
	}
	if s.persist != nil && j.seq != 0 && !j.composite {
		id := j.ID
		log := s.jobLog(j)
		opts = append(opts, ems.WithCheckpoints(s.cfg.CheckpointEvery, func(cp *ems.EngineCheckpoint) {
			if err := s.persist.saveCheckpoint(id, cp); err != nil {
				log.Warn("writing checkpoint failed", "phase", "checkpoint", "error", err)
				return
			}
			s.metrics.CheckpointWritten()
		}))
		if j.resume != nil {
			opts = append(opts, ems.WithResume(j.resume))
		}
	}
	var res *ems.Result
	var err error
	if j.composite {
		res, err = ems.MatchComposite(j.pair.Log1, j.pair.Log2, opts...)
	} else {
		res, err = ems.Match(j.pair.Log1, j.pair.Log2, opts...)
	}
	wall := time.Since(start)
	if computeSpan != nil {
		if j.prog != nil {
			j.prog.stampSpan(computeSpan)
		}
		if j.degraded != "" {
			computeSpan.SetAttr("degraded", j.degraded)
		}
		computeSpan.End()
	}
	if thr := s.cfg.SlowJobThreshold; thr > 0 && wall >= thr && j.trace != nil {
		s.jobLog(j).Warn("slow job", "phase", "compute",
			"wall_ms", float64(wall.Microseconds())/1000,
			"threshold_ms", float64(thr.Microseconds())/1000,
			"timeline", "\n"+j.trace.Timeline())
		// The dump's attrs carry no wall-clock measurements so chaos-seeded
		// replays stay byte-identical.
		s.flight.Note("slow-job", "job", j.ID)
		s.flight.Dump("slow-job", "job", j.ID)
	}
	switch {
	case err == nil:
		if j.degraded != "" && res != nil {
			// Stamp the ladder rung before the result is cached, so followers
			// and later cache hits see how it was computed too.
			res.Degraded = j.degraded
		}
		s.completeJob(j, StatusDone, res, "", wall, true)
	case errors.Is(err, ems.ErrStopped) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		cause := context.Cause(ctx)
		switch {
		case errors.Is(cause, errCancelledByClient):
			s.completeJob(j, StatusCancelled, nil, "cancelled by client", wall, false)
		case errors.Is(cause, context.DeadlineExceeded):
			s.metrics.TimedOut()
			s.flight.Note("deadline", "job", j.ID)
			s.completeJob(j, StatusFailed, nil,
				fmt.Sprintf("deadline exceeded: job ran longer than its %v budget", j.timeout), wall, false)
			s.flight.Dump("deadline", "job", j.ID)
		default:
			s.completeJob(j, StatusCancelled, nil, "server shutting down", wall, false)
		}
	default:
		s.completeJob(j, StatusFailed, nil, err.Error(), wall, false)
	}
}

// completeJob finishes a leader job and every follower coalesced onto it,
// publishing a successful result to the cache.
func (s *Server) completeJob(j *Job, status Status, res *ems.Result, errMsg string, wall time.Duration, computed bool) {
	if status == StatusDone && res != nil {
		s.cache.Put(j.key, res)
	}
	if computed && status == StatusDone && res != nil && (res.Repair1 != nil || res.Repair2 != nil) {
		var dropped, reordered, imputed, quarantined uint64
		for _, r := range []*ems.RepairReport{res.Repair1, res.Repair2} {
			if r == nil {
				continue
			}
			dropped += uint64(r.EventsDropped)
			reordered += uint64(r.EventsReordered)
			imputed += uint64(r.EventsImputed)
			quarantined += uint64(r.TracesQuarantined)
		}
		s.metrics.JobRepaired(dropped, reordered, imputed, quarantined)
	}
	if s.persist != nil && j.seq != 0 {
		// Result file before the done record, so a committed "done" always
		// finds its result on the next boot.
		if status == StatusDone && res != nil && computed {
			if err := s.persist.saveResult(j.key, res); err != nil {
				s.jobLog(j).Warn("persisting result failed", "phase", "complete", "error", err)
			}
		}
		if err := s.persist.recordDone(j.ID, status, errMsg); err != nil {
			s.jobLog(j).Warn("journaling completion failed", "phase", "complete", "error", err)
			s.flight.Note("journal.error", "job", j.ID, "record", "done")
		} else {
			s.flight.Note("journal.write", "job", j.ID, "record", "done")
		}
	}
	s.mu.Lock()
	if j.key != "" && s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	followers := j.followers
	j.followers = nil
	// The governor reservation is cleared under s.mu so a racing second
	// completion (client cancel vs. worker finish) releases exactly once.
	cost := j.cost
	j.cost = 0
	s.mu.Unlock()
	if s.gov != nil && cost > 0 {
		s.gov.release(cost)
		s.noteGovernor()
	}

	j.finish(status, res, errMsg, wall, false)
	s.metrics.JobDone(status, wall, computed)
	if computed {
		s.obs.jobDur.Observe(wall.Seconds())
	}
	// Publish the job's spans — the request-time snapshot the middleware
	// stored lacks the compute-phase spans that only exist now. Failed, shed
	// and degraded jobs publish too; their traces are the interesting ones.
	s.recordTrace(j.trace)
	for _, f := range followers {
		// Followers coalesced at recovery are journaled jobs of their own and
		// need their terminal record too (seq != 0 only for those).
		if s.persist != nil && f.seq != 0 {
			if err := s.persist.recordDone(f.ID, status, errMsg); err != nil {
				s.jobLog(f).Warn("journaling completion failed", "phase", "complete", "error", err)
			}
		}
		f.finish(status, res, errMsg, 0, true)
		s.metrics.JobDone(status, 0, false)
	}
	if j.cancel != nil {
		// Terminal either way: release the job context's resources. runJob
		// has already read the cancellation cause it cares about.
		j.cancel(nil)
	}
}

// requeueWithBackoff puts a failed job back in the queue after an
// exponential delay. The queue-depth bound is bypassed: the job was already
// admitted once. If the job is cancelled while waiting, the later enqueue is
// harmless — workers skip terminal jobs.
func (s *Server) requeueWithBackoff(j *Job) {
	if !j.setQueued() {
		return
	}
	delay := s.cfg.RetryBackoff << uint(j.attempt-1)
	time.AfterFunc(delay, func() {
		if err := s.pool.EnqueueForce(j); err != nil {
			s.completeJob(j, StatusCancelled, nil, "server shutting down", 0, false)
		}
	})
}

// Cancel aborts a job by ID: a queued job is finished as cancelled without
// running, a running job's computation is interrupted in-engine (within one
// iteration round) and finishes as cancelled shortly after. Cancelling a
// terminal job is a no-op. Cancelling a coalesced (follower) job detaches
// only that job; the leader computation keeps running for the others.
// ok is false when the ID is unknown.
func (s *Server) Cancel(id string) (*Job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	if j.cancel != nil {
		// Cancel the context before the status check: if a worker picks the
		// job up concurrently, its computation starts already-cancelled and
		// aborts on the first round.
		j.cancel(errCancelledByClient)
	}
	if j.Status() == StatusQueued {
		// Not picked up yet (fresh job still queued, or a follower): finish
		// it now so pollers see the cancellation immediately; the worker
		// skips it later because setRunning fails on terminal jobs.
		s.completeJob(j, StatusCancelled, nil, "cancelled by client", 0, false)
	}
	return j, true
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobViews lists up to limit jobs, newest first, optionally filtered by
// status ("" matches every state). limit <= 0 uses the default (100).
func (s *Server) JobViews(status Status, limit int) []JobView {
	if limit <= 0 {
		limit = 100
	}
	s.mu.Lock()
	jobs := make([]*Job, 0, limit)
	for i := len(s.jobOrder) - 1; i >= 0 && len(jobs) < limit; i-- {
		j, ok := s.jobs[s.jobOrder[i]]
		if !ok {
			continue // evicted from the registry, order entry not yet pruned
		}
		if status != "" && j.Status() != status {
			continue
		}
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	return views
}

// Stats snapshots the metrics with live gauges filled in.
func (s *Server) Stats() Stats {
	st := s.metrics.Snapshot()
	st.QueueDepth = s.pool.Depth()
	st.Running = s.pool.Running()
	st.CacheSize = s.cache.Len()
	if s.persist != nil {
		st.JournalBytes = s.persist.journalBytes()
	}
	if s.gov != nil {
		st.MemBudgetBytes = s.gov.budget
		st.MemCommittedBytes = s.gov.committed.Load()
	}
	st.Governor = string(s.governorState())
	st.Load = s.governorLoad()
	return st
}

// retryAfterSeconds derives a Retry-After hint from the queue's drain rate:
// the current depth times the average job wall time, spread across the
// workers, clamped to [1s, 30s]. With no completed timed jobs yet the floor
// applies.
func (s *Server) retryAfterSeconds() int {
	depth := s.pool.Depth()
	avgMS := s.metrics.Snapshot().AvgWallMillis
	secs := 1
	if depth > 0 && avgMS > 0 {
		drain := float64(depth) * avgMS / float64(s.cfg.Workers) / 1000
		secs = int(drain + 0.999)
	}
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// Shutdown stops intake, cancels queued jobs, and drains running jobs in
// two bounded phases: first it waits up to ctx's deadline for them to finish
// on their own, then it cancels the base context — which aborts the
// remaining computations in-engine within one iteration round — and waits
// for the workers to observe that. It returns ctx's error when the grace
// period expired (some jobs were interrupted rather than drained), nil when
// everything finished in time. It is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	dropped := s.pool.Close()
	for _, j := range dropped {
		s.completeJob(j, StatusCancelled, nil, "server shutting down", 0, false)
	}
	err := s.pool.Wait(ctx)
	if !already {
		// Release the base context only after the drain, so running jobs
		// were given the chance to finish.
		s.cancel()
	}
	if err != nil {
		// Grace expired: the base-context cancellation above interrupts the
		// stragglers inside the iteration engine, so this final wait returns
		// within about one round rather than one job.
		_ = s.pool.Wait(context.Background())
	}
	// Batch coordinators run under the base context too: cancelled above,
	// they abandon their remaining pairs (cancelling remote jobs best-effort)
	// and finish promptly.
	s.batchWG.Wait()
	if !already && s.persist != nil {
		// Workers are done; no more journal writes are coming.
		if cerr := s.persist.Close(); cerr != nil {
			s.cfg.Log.Warn("closing journal failed", "error", cerr)
		}
	}
	return err
}

// recoverJobs replays the journaled job states into the fresh server:
// terminal jobs get their status (and, for done jobs, their persisted
// result) back; queued and running jobs are rebuilt from their persisted
// request bodies and re-enqueued, running ones resuming from their last
// checkpoint. Called from New before the server is shared, but after the
// pool has started — re-enqueued jobs begin computing immediately.
func (s *Server) recoverJobs() {
	p := s.persist
	states := p.states()
	s.mu.Lock()
	if n := p.nextSeq(); n > s.nextID {
		// Never reuse a journaled job ID.
		s.nextID = n
	}
	s.mu.Unlock()
	for _, st := range states {
		switch st.Status {
		case StatusDone:
			j := newJob(st.ID)
			j.seq = st.Seq
			s.mu.Lock()
			s.registerLocked(j)
			s.mu.Unlock()
			if res, ok := p.loadResult(st.Key); ok {
				s.cache.Put(st.Key, res)
				j.finish(StatusDone, res, "", 0, true)
			} else {
				j.finish(StatusFailed, nil, "result no longer available after restart", 0, false)
			}
		case StatusFailed, StatusCancelled:
			j := newJob(st.ID)
			j.seq = st.Seq
			s.mu.Lock()
			s.registerLocked(j)
			s.mu.Unlock()
			j.finish(st.Status, nil, st.Error, 0, false)
		default: // queued or running: the job never finished
			s.recoverActiveJob(st)
		}
	}
}

// recoverActiveJob rebuilds one unfinished job from its persisted request
// and puts it back in the queue.
func (s *Server) recoverActiveJob(st jobState) {
	p := s.persist
	j := newJob(st.ID)
	j.seq, j.attempt, j.key, j.composite = st.Seq, st.Attempt, st.Key, st.Composite
	// The original trace died with the previous process; a recovered job gets
	// a fresh one so its re-run is observable too.
	j.trace = s.newTrace("")
	j.trace.Keep()
	if !j.composite {
		j.prog = &progress{}
	}
	s.mu.Lock()
	s.registerLocked(j)
	s.mu.Unlock()
	if st.Status == StatusRunning && st.Attempt >= maxCrashAttempts {
		// This job was mid-run at several consecutive crashes: presume it is
		// the crash trigger and stop retrying it rather than crash-loop.
		s.completeJob(j, StatusFailed, nil,
			fmt.Sprintf("abandoned after %d attempts that ended in a crash", st.Attempt), 0, false)
		return
	}
	req, err := p.loadRequest(st.ID)
	if err != nil {
		s.completeJob(j, StatusFailed, nil, "request no longer available after restart", 0, false)
		return
	}
	pj, err := s.prepare(req)
	if err != nil {
		// E.g. AllowPaths was turned off between runs.
		s.completeJob(j, StatusFailed, nil, err.Error(), 0, false)
		return
	}
	if res, ok := s.cache.Get(pj.key); ok {
		// An identical job finished before the crash; serve its result.
		s.metrics.Recovered()
		s.completeJob(j, StatusDone, res, "", 0, false)
		return
	}
	s.mu.Lock()
	if leader, ok := s.inflight[pj.key]; ok {
		// Identical unfinished job already re-enqueued: coalesce onto it.
		leader.followers = append(leader.followers, j)
		s.mu.Unlock()
		s.metrics.Recovered()
		return
	}
	j.key = pj.key
	j.pair = ems.PairInput{Name: j.ID, Log1: pj.l1, Log2: pj.l2}
	j.opts = pj.opts
	j.timeout = pj.timeout
	j.ctx, j.cancel = context.WithCancelCause(s.ctx)
	if s.gov != nil && pj.cost != nil {
		// Recovered jobs were admitted before the restart; their reservation
		// is re-taken without an admission check (may transiently overshoot).
		s.gov.forceCommit(pj.cost.Bytes)
		j.cost = pj.cost.Bytes
	}
	s.inflight[pj.key] = j
	s.mu.Unlock()
	if st.Status == StatusRunning && !j.composite {
		if j.resume = p.loadCheckpoint(st.ID); j.resume != nil {
			s.metrics.ResumedFromCheckpoint()
		}
	}
	s.metrics.Recovered()
	if err := s.pool.EnqueueForce(j); err != nil {
		s.completeJob(j, StatusCancelled, nil, "server shutting down", 0, false)
	}
}
