package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// quietConfig silences the operational logger so contained-panic stacks do
// not clutter test output.
func quietConfig(cfg Config) Config {
	cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	return cfg
}

func deleteJob(t *testing.T, ts *httptest.Server, id string) (JobView, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
	}
	return view, resp.StatusCode
}

// blockFirstRound installs a failpoint that blocks the first engine round it
// sees until release is closed, closing started when it begins. Restore via
// the returned func.
func blockFirstRound() (started, release chan struct{}, restore func()) {
	started = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	restore = core.SetFailpoint(func(round int) {
		once.Do(func() {
			close(started)
			<-release
		})
	})
	return started, release, restore
}

// TestPanicInjectionFailsOnlyItsJob: a panic in the middle of a computation
// fails that job with a diagnostic, bumps the panic counter, and leaves the
// daemon serving further jobs.
func TestPanicInjectionFailsOnlyItsJob(t *testing.T) {
	_, ts := newTestServer(t, quietConfig(Config{Workers: 1}))
	var once sync.Once
	restore := core.SetFailpoint(func(round int) {
		once.Do(func() { panic("injected job panic") })
	})
	defer restore()

	view, code := postJob(t, ts, paperRequest(t))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	final := pollJob(t, ts, view.ID)
	if final.Status != StatusFailed {
		t.Fatalf("panicked job status = %s, want failed", final.Status)
	}
	if !strings.Contains(final.Error, "panicked") || !strings.Contains(final.Error, "injected job panic") {
		t.Fatalf("panicked job error = %q", final.Error)
	}
	if st := getStats(t, ts); st.Panicked != 1 {
		t.Fatalf("jobs_panicked = %d, want 1", st.Panicked)
	}

	// The daemon survived: a fresh (different-key) job computes normally.
	req2 := JobRequest{
		Log1: LogInput{Name: "P1", CSV: logCSV(t, permLog(6, 10, "a", 1))},
		Log2: LogInput{Name: "P2", CSV: logCSV(t, permLog(6, 10, "b", 2))},
	}
	view2, code := postJob(t, ts, req2)
	if code != http.StatusAccepted {
		t.Fatalf("post-panic submit status = %d", code)
	}
	if final := pollJob(t, ts, view2.ID); final.Status != StatusDone {
		t.Fatalf("post-panic job status = %s (err %q)", final.Status, final.Error)
	}
}

// TestJobDeadlineExceeded: a job that outlives its wall-clock budget fails
// (distinct from cancelled) with a deadline diagnostic and bumps the
// deadline counter.
func TestJobDeadlineExceeded(t *testing.T) {
	_, ts := newTestServer(t, quietConfig(Config{Workers: 1, JobTimeout: 5 * time.Millisecond}))
	restore := core.SetFailpoint(func(round int) { time.Sleep(30 * time.Millisecond) })
	defer restore()

	view, code := postJob(t, ts, paperRequest(t))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	final := pollJob(t, ts, view.ID)
	if final.Status != StatusFailed {
		t.Fatalf("status = %s, want failed (deadline is a failure, not a cancellation)", final.Status)
	}
	if !strings.Contains(final.Error, "deadline exceeded") {
		t.Fatalf("error = %q, want deadline diagnostic", final.Error)
	}
	st := getStats(t, ts)
	if st.TimedOut != 1 {
		t.Fatalf("jobs_deadline_exceeded = %d, want 1", st.TimedOut)
	}
	if st.Cancelled != 0 {
		t.Fatalf("jobs_cancelled = %d, want 0", st.Cancelled)
	}
}

// TestJobTimeoutOverrideAndClamp: requests may override the default budget
// via timeout_ms, but never beyond the server's maximum — even by asking for
// no deadline at all. Negative overrides are a 400.
func TestJobTimeoutOverrideAndClamp(t *testing.T) {
	_, ts := newTestServer(t, quietConfig(Config{Workers: 1, MaxJobTimeout: 5 * time.Millisecond}))
	restore := core.SetFailpoint(func(round int) { time.Sleep(30 * time.Millisecond) })
	defer restore()

	// Explicitly requesting "no deadline" (0) is clamped to the server max.
	req := paperRequest(t)
	zero := 0.0
	req.Options.TimeoutMS = &zero
	view, code := postJob(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	if final := pollJob(t, ts, view.ID); final.Status != StatusFailed || !strings.Contains(final.Error, "deadline exceeded") {
		t.Fatalf("clamped job = %s %q, want deadline failure", final.Status, final.Error)
	}

	neg := -1.0
	bad := paperRequest(t)
	bad.Options.TimeoutMS = &neg
	if _, code := postJob(t, ts, bad); code != http.StatusBadRequest {
		t.Fatalf("negative timeout_ms status = %d, want 400", code)
	}
}

// TestCancelQueuedJob: DELETE on a still-queued job finishes it immediately
// as cancelled; the worker later skips it.
func TestCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, quietConfig(Config{Workers: 1}))
	started, release, restore := blockFirstRound()
	defer restore()

	blocker, code := postJob(t, ts, paperRequest(t))
	if code != http.StatusAccepted {
		t.Fatalf("blocker submit status = %d", code)
	}
	<-started // the single worker is now stuck inside the blocker job

	queuedReq := JobRequest{
		Log1: LogInput{Name: "Q1", CSV: logCSV(t, permLog(6, 10, "q", 3))},
		Log2: LogInput{Name: "Q2", CSV: logCSV(t, permLog(6, 10, "r", 4))},
	}
	queued, code := postJob(t, ts, queuedReq)
	if code != http.StatusAccepted {
		t.Fatalf("queued submit status = %d", code)
	}

	view, code := deleteJob(t, ts, queued.ID)
	if code != http.StatusOK {
		t.Fatalf("cancel status = %d", code)
	}
	if view.Status != StatusCancelled || !strings.Contains(view.Error, "cancelled by client") {
		t.Fatalf("cancelled queued job = %s %q", view.Status, view.Error)
	}

	if _, code := deleteJob(t, ts, "job-999999"); code != http.StatusNotFound {
		t.Fatalf("cancel unknown job status = %d, want 404", code)
	}

	close(release)
	if final := pollJob(t, ts, blocker.ID); final.Status != StatusDone {
		t.Fatalf("blocker status = %s (err %q)", final.Status, final.Error)
	}
}

// TestCancelRunningJob is the acceptance scenario: DELETE on a running job
// interrupts the computation in-engine (within one round once the round's
// work finishes) and the job ends cancelled-by-client.
func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, quietConfig(Config{Workers: 1}))
	started, release, restore := blockFirstRound()
	defer restore()

	view, code := postJob(t, ts, paperRequest(t))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	<-started // job is mid-round
	if _, code := deleteJob(t, ts, view.ID); code != http.StatusOK {
		t.Fatalf("cancel status = %d", code)
	}
	close(release) // the round finishes; the next stop check aborts

	final := pollJob(t, ts, view.ID)
	if final.Status != StatusCancelled {
		t.Fatalf("status = %s, want cancelled", final.Status)
	}
	if !strings.Contains(final.Error, "cancelled by client") {
		t.Fatalf("error = %q, want client-cancel diagnostic (not shutdown)", final.Error)
	}
	if st := getStats(t, ts); st.Cancelled != 1 {
		t.Fatalf("jobs_cancelled = %d, want 1", st.Cancelled)
	}
}

// TestQueueFullSheds: once MaxQueueDepth jobs wait, further fresh
// submissions get 503 + Retry-After and the shed counter moves — but
// coalescing onto an in-flight job is still served.
func TestQueueFullSheds(t *testing.T) {
	_, ts := newTestServer(t, quietConfig(Config{Workers: 1, MaxQueueDepth: 1}))
	started, release, restore := blockFirstRound()
	defer restore()

	running := paperRequest(t)
	first, code := postJob(t, ts, running)
	if code != http.StatusAccepted {
		t.Fatalf("running submit status = %d", code)
	}
	<-started

	queuedReq := JobRequest{
		Log1: LogInput{Name: "Q1", CSV: logCSV(t, permLog(6, 10, "s", 5))},
		Log2: LogInput{Name: "Q2", CSV: logCSV(t, permLog(6, 10, "t", 6))},
	}
	if _, code := postJob(t, ts, queuedReq); code != http.StatusAccepted {
		t.Fatalf("queued submit status = %d", code)
	}

	shedReq := JobRequest{
		Log1: LogInput{Name: "S1", CSV: logCSV(t, permLog(6, 10, "u", 7))},
		Log2: LogInput{Name: "S2", CSV: logCSV(t, permLog(6, 10, "v", 8))},
	}
	body, err := json.Marshal(shedReq)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed submit status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("shed response missing Retry-After")
	}
	if st := getStats(t, ts); st.Shed != 1 {
		t.Fatalf("jobs_shed = %d, want 1", st.Shed)
	}

	// A duplicate of the running job coalesces instead of being shed.
	if _, code := postJob(t, ts, running); code != http.StatusAccepted {
		t.Fatalf("coalescing submit status = %d, want 202 despite full queue", code)
	}

	close(release)
	if final := pollJob(t, ts, first.ID); final.Status != StatusDone {
		t.Fatalf("running job status = %s (err %q)", final.Status, final.Error)
	}
}

// TestSubmitBodyTooLarge: an oversized submission is refused with 413.
func TestSubmitBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, quietConfig(Config{Workers: 1, MaxBodyBytes: 1 << 10}))
	big := JobRequest{
		Log1: LogInput{Name: "B1", CSV: "case,event\n" + strings.Repeat("c1,AAAAAAAA\n", 1000)},
		Log2: LogInput{Name: "B2", CSV: "case,event\nc1,X\nc1,Y\n"},
	}
	body, err := json.Marshal(big)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "limit") {
		t.Fatalf("error body = %q", eb.Error)
	}
	if st := getStats(t, ts); st.Rejected == 0 {
		t.Fatalf("jobs_rejected = 0 after oversized body")
	}
}

// TestHealthzDuringDrain: once shutdown begins, the liveness probe flips to
// 503 "shutting-down" so load balancers stop routing new work here.
func TestHealthzDuringDrain(t *testing.T) {
	s := mustNew(t, quietConfig(Config{Workers: 1}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	started, release, restore := blockFirstRound()
	defer restore()

	view, code := postJob(t, ts, paperRequest(t))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	<-started

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Shutdown flips s.closed before draining; poll until the probe sees it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var hb map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if hb["status"] != "shutting-down" {
				t.Fatalf("healthz body = %v", hb)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never flipped to 503 during drain")
		}
		time.Sleep(2 * time.Millisecond)
	}

	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if final := pollJob(t, ts, view.ID); final.Status != StatusDone {
		t.Fatalf("drained job status = %s", final.Status)
	}
}

// TestShutdownInterruptsLongJob is the acceptance scenario: a job that would
// outlive the drain grace period is interrupted in-engine once the grace
// expires — Shutdown returns promptly (within about one round, not one job)
// and the job ends cancelled with the shutdown diagnostic.
func TestShutdownInterruptsLongJob(t *testing.T) {
	s := mustNew(t, quietConfig(Config{Workers: 1}))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Every round stalls 10ms: the job would take far longer than the 30ms
	// grace, but each stall ends at a stop check.
	restore := core.SetFailpoint(func(round int) { time.Sleep(10 * time.Millisecond) })
	defer restore()

	view, code := postJob(t, ts, paperRequest(t))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	// Wait until the job is actually running so the drain has something to
	// interrupt.
	for s.pool.Running() == 0 {
		time.Sleep(time.Millisecond)
	}

	begin := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := s.Shutdown(ctx)
	elapsed := time.Since(begin)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want DeadlineExceeded (grace expired)", err)
	}
	// Grace (30ms) + about one stalled round (10ms) + slack; far below the
	// many-round runtime the job would otherwise need.
	if elapsed > 5*time.Second {
		t.Fatalf("Shutdown took %v; in-engine interruption did not bite", elapsed)
	}
	final := pollJob(t, ts, view.ID)
	if final.Status != StatusCancelled || !strings.Contains(final.Error, "shutting down") {
		t.Fatalf("interrupted job = %s %q, want shutdown cancellation", final.Status, final.Error)
	}
}
