package server

import (
	"bufio"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
)

// loadReplaySchedule loads the committed chaos schedule `make chaos-test`
// replays. Keeping it as a testdata file (rather than an inline literal) is
// the point: the same bytes are parsed on every run, so a schedule change is
// a reviewed diff, not a silent drift of the fault sequence.
func loadReplaySchedule(t *testing.T) *chaos.Schedule {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "chaos_replay.json"))
	if err != nil {
		t.Fatalf("read committed schedule: %v", err)
	}
	sched, err := chaos.ParseSchedule(data)
	if err != nil {
		t.Fatalf("parse committed schedule: %v", err)
	}
	return sched
}

// scrapeMetric fetches one counter/gauge value off the /metrics exposition.
func scrapeMetric(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name)), 64)
		if err != nil {
			t.Fatalf("unparseable %s sample %q: %v", name, line, err)
		}
		return v
	}
	t.Fatalf("/metrics has no %s sample", name)
	return 0
}

// TestChaosKillRestartUnderSchedule is the chaos acceptance suite: under the
// committed seeded schedule (slow-round jitter plus one torn WAL write) a
// daemon is killed mid-computation and restarted on the same data directory.
// Invariants, regardless of where the faults land:
//
//   - no acknowledged job is lost: everything Submit accepted before the
//     crash reaches a terminal state after the restart;
//   - the resumed result is bit-identical to an uninterrupted run;
//   - the torn write fails exactly the Submit it hits — with an error, not
//     silently — and the daemon keeps accepting work afterwards;
//   - /metrics and /v1/stats agree after recovery.
func TestChaosKillRestartUnderSchedule(t *testing.T) {
	sched := loadReplaySchedule(t)
	restoreChaos, err := sched.Activate()
	if err != nil {
		t.Fatalf("Activate: %v", err)
	}
	defer restoreChaos()

	dir := t.TempDir()
	reqMain := slowRequest(t)

	// blockAtRound shadows the schedule's engine.round rule for phase A (the
	// failpoint registry holds one hook at a time); restoring it below
	// re-arms the chaos delays for the recovery phase.
	started, restoreBlock := blockAtRound(4)
	sA := mustNew(t, durableConfig(t, dir))
	// No Shutdown for sA: abandoning it mid-round is the simulated kill.
	jMain, err := sA.Submit(reqMain)
	if err != nil {
		t.Fatalf("submit under chaos: %v", err)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("job never reached the blocking round")
	}
	if st := sA.Stats(); st.Checkpoints == 0 {
		t.Fatalf("checkpoints_written = 0 before the kill")
	}

	// WAL writes so far: submit(jMain)=1, start(jMain)=2. The schedule's
	// torn rule (after 2, count 1) therefore hits the next submit: it must
	// fail loudly — the client knows the job was never accepted — and leave
	// the WAL repairable, not wedged.
	reqTorn := JobRequest{
		Log1: LogInput{Name: "T1", CSV: logCSV(t, permLog(5, 4, "t", 11))},
		Log2: LogInput{Name: "T2", CSV: logCSV(t, permLog(5, 4, "u", 12))},
	}
	if _, err := sA.Submit(reqTorn); err == nil {
		t.Fatal("submit during the injected torn write succeeded, want persistence error")
	} else if !strings.Contains(err.Error(), "persist") {
		t.Fatalf("torn-write submit failed with %v, want a persistence error", err)
	}

	// The daemon keeps serving: the next append repairs the torn tail and
	// this job is durably queued (the single worker is still blocked).
	reqQueued := paperRequest(t)
	jQueued, err := sA.Submit(reqQueued)
	if err != nil {
		t.Fatalf("submit after torn-tail repair: %v", err)
	}

	restoreBlock() // re-arms the chaos engine delays for the restart
	// Abandon sA: the kill.

	sB := mustNew(t, durableConfig(t, dir))
	t.Cleanup(func() { _ = sB.Shutdown(context.Background()) })
	tsB := httptest.NewServer(sB.Handler())
	t.Cleanup(tsB.Close)

	// Invariant 1: both acknowledged jobs survive to a terminal state.
	for _, id := range []string{jMain.ID, jQueued.ID} {
		j, ok := sB.Job(id)
		if !ok {
			t.Fatalf("acknowledged job %s lost across the kill", id)
		}
		waitDone(t, j)
		if j.Status() != StatusDone {
			t.Fatalf("recovered job %s ended %s: %s", id, j.Status(), j.View().Error)
		}
	}

	// Invariant 2: resumed results are bit-identical to uninterrupted runs,
	// chaos delays and all.
	resMain, _ := mustJob(t, sB, jMain.ID).Result()
	requireSimBitIdentical(t, directMatch(t, reqMain), resMain)
	resQueued, _ := mustJob(t, sB, jQueued.ID).Result()
	requireSimBitIdentical(t, directMatch(t, reqQueued), resQueued)

	// Invariant 3: recovery accounting, then /metrics agreeing with /v1/stats.
	st := sB.Stats()
	if st.Recovered != 2 {
		t.Errorf("jobs_recovered = %d, want 2", st.Recovered)
	}
	if st.Resumed != 1 {
		t.Errorf("jobs_resumed_from_checkpoint = %d, want 1", st.Resumed)
	}
	for name, want := range map[string]uint64{
		"emsd_jobs_recovered_total": st.Recovered,
		"emsd_jobs_resumed_total":   st.Resumed,
		"emsd_jobs_completed_total": st.Completed,
		"emsd_jobs_failed_total":    st.Failed,
	} {
		if got := scrapeMetric(t, tsB, name); got != float64(want) {
			t.Errorf("%s = %v on /metrics, but /v1/stats says %d", name, got, want)
		}
	}

	// The restarted daemon still takes new work under the live schedule.
	jNew, err := sB.Submit(reqMain)
	if err != nil {
		t.Fatalf("post-restart submit: %v", err)
	}
	waitDone(t, jNew)
	if jNew.Status() != StatusDone {
		t.Fatalf("post-restart job ended %s: %s", jNew.Status(), jNew.View().Error)
	}
}

func mustJob(t *testing.T, s *Server, id string) *Job {
	t.Helper()
	j, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s not found", id)
	}
	return j
}

// TestChaosJournalEnospcFailsJobNotDaemon: an injected ENOSPC on the very
// first WAL append fails that submission with the injected error, but the
// journal repairs itself and the daemon serves the next job to completion.
func TestChaosJournalEnospcFailsJobNotDaemon(t *testing.T) {
	sched := &chaos.Schedule{
		Seed:  7,
		Rules: []chaos.Rule{{Point: chaos.JournalWrite, Fault: "enospc", Count: 1}},
	}
	restore, err := sched.Activate()
	if err != nil {
		t.Fatalf("Activate: %v", err)
	}
	defer restore()

	s := mustNew(t, durableConfig(t, t.TempDir()))
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })

	if _, err := s.Submit(paperRequest(t)); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("submit during ENOSPC: got %v, want the injected fault surfaced", err)
	}

	req := slowRequest(t)
	j, err := s.Submit(req)
	if err != nil {
		t.Fatalf("submit after ENOSPC: %v (journal wedged?)", err)
	}
	waitDone(t, j)
	if j.Status() != StatusDone {
		t.Fatalf("post-ENOSPC job ended %s: %s", j.Status(), j.View().Error)
	}
	res, _ := j.Result()
	requireSimBitIdentical(t, directMatch(t, req), res)
	if st := s.Stats(); st.JournalBytes <= 0 {
		t.Errorf("journal_bytes = %d after a successful append, want > 0", st.JournalBytes)
	}
}
