package server

import (
	"context"
	"testing"
	"time"
)

// TestPoolCancelsQueuedOnClose pins the drain semantics deterministically:
// with one worker held busy, Close returns exactly the still-queued jobs and
// Wait blocks until the running job finishes.
func TestPoolCancelsQueuedOnClose(t *testing.T) {
	started := make(chan *Job, 1)
	release := make(chan struct{})
	p := newPool(1, 0, func(j *Job) {
		started <- j
		<-release
	})
	a, b, c := newJob("a"), newJob("b"), newJob("c")
	for _, j := range []*Job{a, b, c} {
		if err := p.Enqueue(j); err != nil {
			t.Fatalf("enqueue %s: %v", j.ID, err)
		}
	}
	running := <-started // a is in the worker, b and c are queued
	if running != a {
		t.Fatalf("running job = %s, want a", running.ID)
	}
	if d := p.Depth(); d != 2 {
		t.Fatalf("queue depth = %d, want 2", d)
	}
	dropped := p.Close()
	if len(dropped) != 2 || dropped[0] != b || dropped[1] != c {
		t.Fatalf("dropped = %v, want [b c]", dropped)
	}
	if err := p.Enqueue(newJob("late")); err != ErrShuttingDown {
		t.Fatalf("enqueue after close: %v, want ErrShuttingDown", err)
	}
	// Wait must block while a is still running…
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Wait(ctx); err == nil {
		t.Fatalf("Wait returned before the running job finished")
	}
	// …and return once it drains.
	close(release)
	if err := p.Wait(context.Background()); err != nil {
		t.Fatalf("Wait after drain: %v", err)
	}
	if r := p.Running(); r != 0 {
		t.Fatalf("running = %d after drain", r)
	}
}

func TestPoolRunsAllJobs(t *testing.T) {
	done := make(chan string, 8)
	p := newPool(3, 0, func(j *Job) { done <- j.ID })
	ids := []string{"j1", "j2", "j3", "j4", "j5"}
	for _, id := range ids {
		if err := p.Enqueue(newJob(id)); err != nil {
			t.Fatal(err)
		}
	}
	if dropped := p.Close(); len(dropped) > 0 {
		// Jobs not yet picked up are dropped by Close; re-run them here to
		// keep the accounting simple — the point of this test is that
		// nothing is lost or run twice.
		for _, j := range dropped {
			done <- j.ID
		}
	}
	if err := p.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for range ids {
		seen[<-done]++
	}
	for _, id := range ids {
		if seen[id] != 1 {
			t.Errorf("job %s ran %d times", id, seen[id])
		}
	}
}
