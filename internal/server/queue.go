package server

import (
	"context"
	"errors"
	"sync"
)

// ErrShuttingDown is returned for submissions that arrive after shutdown
// has begun.
var ErrShuttingDown = errors.New("server: shutting down")

// ErrQueueFull is returned for submissions shed because the job queue has
// reached its configured depth bound; clients should retry later.
var ErrQueueFull = errors.New("server: job queue is full")

// pool is a bounded worker pool over a FIFO job queue. Shutdown is
// two-phase: Close stops intake and hands back the still-queued jobs (so
// the server can mark them cancelled), Wait drains the in-flight ones.
type pool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*Job
	maxDepth int
	closed   bool
	running  int
	wg       sync.WaitGroup
	run      func(*Job)
}

// newPool starts workers goroutines executing run on queued jobs. maxDepth
// bounds the number of queued (not yet running) jobs; <= 0 is unbounded.
func newPool(workers, maxDepth int, run func(*Job)) *pool {
	p := &pool{maxDepth: maxDepth, run: run}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Enqueue appends a job to the queue, shedding it with ErrQueueFull when the
// depth bound is reached.
func (p *pool) Enqueue(j *Job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrShuttingDown
	}
	if p.maxDepth > 0 && len(p.queue) >= p.maxDepth {
		return ErrQueueFull
	}
	p.queue = append(p.queue, j)
	p.cond.Signal()
	return nil
}

// EnqueueForce appends a job regardless of the depth bound. Recovery and
// retry re-enqueues use it: those jobs were already admitted once and must
// not be shed by load that arrived after them.
func (p *pool) EnqueueForce(j *Job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrShuttingDown
	}
	p.queue = append(p.queue, j)
	p.cond.Signal()
	return nil
}

func (p *pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return // closed and drained
		}
		j := p.queue[0]
		p.queue = p.queue[1:]
		p.running++
		p.mu.Unlock()
		p.run(j)
		p.mu.Lock()
		p.running--
		p.mu.Unlock()
	}
}

// Close stops intake and returns the jobs that were still queued; they will
// not be run. Jobs already picked up by a worker keep running.
func (p *pool) Close() []*Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	dropped := p.queue
	p.queue = nil
	p.cond.Broadcast()
	return dropped
}

// Wait blocks until every worker has finished its current job, or ctx
// expires.
func (p *pool) Wait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Depth reports the number of queued (not yet running) jobs.
func (p *pool) Depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Running reports the number of jobs currently being computed.
func (p *pool) Running() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.running
}
