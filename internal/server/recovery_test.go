package server

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/ems"
	"repro/internal/core"
)

// durableConfig is quietConfig plus a data directory and per-round
// checkpoints, the common shape of the recovery tests.
func durableConfig(t *testing.T, dir string) Config {
	t.Helper()
	return quietConfig(Config{Workers: 1, DataDir: dir, CheckpointEvery: 1})
}

// blockAtRound installs a failpoint that blocks forever once an engine
// reaches the given round, closing started the first time it does. The
// blocked goroutine leaks for the remainder of the test binary — that is the
// point: it models a process that died mid-round.
func blockAtRound(round int) (started chan struct{}, restore func()) {
	started = make(chan struct{})
	var once sync.Once
	restore = core.SetFailpoint(func(r int) {
		if r >= round {
			once.Do(func() { close(started) })
			select {} // never released: the "crashed" computation
		}
	})
	return started, restore
}

// waitDone waits for a job to reach a terminal state.
func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", j.ID)
	}
}

// requireSimBitIdentical compares two results' similarity matrices exactly.
func requireSimBitIdentical(t *testing.T, want, got *ems.Result) {
	t.Helper()
	if len(want.Sim) != len(got.Sim) {
		t.Fatalf("sim length %d, want %d", len(got.Sim), len(want.Sim))
	}
	for i := range want.Sim {
		if math.Float64bits(want.Sim[i]) != math.Float64bits(got.Sim[i]) {
			t.Fatalf("sim[%d] = %v, want %v (not bit-identical)", i, got.Sim[i], want.Sim[i])
		}
	}
}

// slowRequest is a job dense enough to need many iteration rounds.
func slowRequest(t *testing.T) JobRequest {
	t.Helper()
	return JobRequest{
		Log1: LogInput{Name: "R1", CSV: logCSV(t, permLog(12, 30, "a", 1))},
		Log2: LogInput{Name: "R2", CSV: logCSV(t, permLog(12, 30, "b", 2))},
	}
}

// directMatch computes the request's expected result in-process.
func directMatch(t *testing.T, req JobRequest) *ems.Result {
	t.Helper()
	l1, err := ems.ReadCSV(strings.NewReader(req.Log1.CSV), "R1")
	if err != nil {
		t.Fatal(err)
	}
	l2, err := ems.ReadCSV(strings.NewReader(req.Log2.CSV), "R2")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ems.Match(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestKillAndRestartResumesFromCheckpoint is the crash-recovery acceptance
// test: a job is killed mid-round (the process is abandoned, never shut
// down), a second server opens the same data directory, replays the journal,
// resumes the job from its last persisted checkpoint, and produces a result
// bit-identical to an uninterrupted computation.
func TestKillAndRestartResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	req := slowRequest(t)

	started, restore := blockAtRound(4)
	sA := mustNew(t, durableConfig(t, dir))
	// No Shutdown for sA: abandoning it mid-round is the simulated crash.
	jA, err := sA.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("job never reached the blocking round")
	}
	// Rounds 1-3 completed before the "crash", so with CheckpointEvery=1 at
	// least one checkpoint is on disk.
	if st := sA.Stats(); st.Checkpoints == 0 {
		t.Fatalf("checkpoints_written = 0 before the crash")
	}
	restore() // the next server must compute unimpeded

	sB := mustNew(t, durableConfig(t, dir))
	t.Cleanup(func() { _ = sB.Shutdown(context.Background()) })
	jB, ok := sB.Job(jA.ID)
	if !ok {
		t.Fatalf("job %s not recovered", jA.ID)
	}
	waitDone(t, jB)
	if jB.Status() != StatusDone {
		t.Fatalf("recovered job ended %s: %s", jB.Status(), jB.View().Error)
	}
	res, _ := jB.Result()
	requireSimBitIdentical(t, directMatch(t, req), res)

	st := sB.Stats()
	if st.Recovered != 1 {
		t.Errorf("jobs_recovered = %d, want 1", st.Recovered)
	}
	if st.Resumed != 1 {
		t.Errorf("jobs_resumed_from_checkpoint = %d, want 1", st.Resumed)
	}
	if st.JournalBytes <= 0 {
		t.Errorf("journal_bytes = %d, want > 0", st.JournalBytes)
	}
}

// TestRestartReenqueuesQueuedJobs: jobs still waiting in the queue at the
// crash are re-run after restart, without a checkpoint to resume from.
func TestRestartReenqueuesQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	started, restore := blockAtRound(1)
	sA := mustNew(t, durableConfig(t, dir))
	blocked, err := sA.Submit(slowRequest(t)) // occupies the only worker
	if err != nil {
		t.Fatal(err)
	}
	queued, err := sA.Submit(paperRequest(t)) // never picked up before the crash
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("job never reached the blocking round")
	}
	restore()

	sB := mustNew(t, durableConfig(t, dir))
	t.Cleanup(func() { _ = sB.Shutdown(context.Background()) })
	for _, id := range []string{blocked.ID, queued.ID} {
		j, ok := sB.Job(id)
		if !ok {
			t.Fatalf("job %s not recovered", id)
		}
		waitDone(t, j)
		if j.Status() != StatusDone {
			t.Fatalf("recovered job %s ended %s: %s", id, j.Status(), j.View().Error)
		}
	}
	if st := sB.Stats(); st.Recovered != 2 {
		t.Errorf("jobs_recovered = %d, want 2", st.Recovered)
	}
}

// TestRestartServesPersistedResults: finished results survive a clean
// restart — the old job still answers, and an identical new submission is a
// cache hit instead of a recomputation.
func TestRestartServesPersistedResults(t *testing.T) {
	dir := t.TempDir()
	req := paperRequest(t)
	sA := mustNew(t, durableConfig(t, dir))
	jA, err := sA.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, jA)
	resA, ok := jA.Result()
	if !ok {
		t.Fatalf("job ended %s", jA.Status())
	}
	if err := sA.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	sB := mustNew(t, durableConfig(t, dir))
	t.Cleanup(func() { _ = sB.Shutdown(context.Background()) })
	jOld, ok := sB.Job(jA.ID)
	if !ok {
		t.Fatalf("finished job %s forgotten after restart", jA.ID)
	}
	resOld, ok := jOld.Result()
	if !ok {
		t.Fatalf("restarted job has no result (status %s)", jOld.Status())
	}
	requireSimBitIdentical(t, resA, resOld)

	jNew, err := sB.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, jNew)
	if view := jNew.View(); !view.CacheHit {
		t.Errorf("identical post-restart submission was recomputed, want cache hit")
	}
}

// TestRetryAfterPanicResumesFromCheckpoint: a panicked computation is
// retried with backoff when JobRetries allows, resuming from the last
// checkpoint, and still produces the uninterrupted result bit-for-bit.
func TestRetryAfterPanicResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	cfg.JobRetries = 1
	cfg.RetryBackoff = time.Millisecond
	s := mustNew(t, cfg)
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })

	var once sync.Once
	restore := core.SetFailpoint(func(r int) {
		if r >= 3 {
			once.Do(func() { panic("injected transient failure") })
		}
	})
	defer restore()

	req := slowRequest(t)
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.Status() != StatusDone {
		t.Fatalf("retried job ended %s: %s", j.Status(), j.View().Error)
	}
	res, _ := j.Result()
	requireSimBitIdentical(t, directMatch(t, req), res)
	st := s.Stats()
	if st.Panicked != 1 || st.Retried != 1 {
		t.Errorf("jobs_panicked = %d, jobs_retried = %d, want 1, 1", st.Panicked, st.Retried)
	}
}

// TestCrashLoopingJobIsAbandoned: a job that was mid-run at three
// consecutive crashes is presumed to be the crash trigger and fails on the
// next boot instead of crash-looping the daemon.
func TestCrashLoopingJobIsAbandoned(t *testing.T) {
	dir := t.TempDir()
	var id string
	for attempt := 1; attempt <= maxCrashAttempts; attempt++ {
		started, restore := blockAtRound(1)
		s := mustNew(t, durableConfig(t, dir))
		if attempt == 1 {
			j, err := s.Submit(slowRequest(t))
			if err != nil {
				t.Fatal(err)
			}
			id = j.ID
		}
		select {
		case <-started:
		case <-time.After(30 * time.Second):
			t.Fatalf("attempt %d never reached the blocking round", attempt)
		}
		restore()
		// Abandon s: crash number `attempt`.
	}

	s := mustNew(t, durableConfig(t, dir))
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	j, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s forgotten", id)
	}
	waitDone(t, j)
	view := j.View()
	if view.Status != StatusFailed || !strings.Contains(view.Error, "abandoned after 3 attempts") {
		t.Fatalf("crash-looping job ended %s (%q), want failed with abandonment diagnostic",
			view.Status, view.Error)
	}
}

// TestStatsExposeDurabilityFields checks the wire names of the durability
// counters on /v1/stats (they are part of the HTTP API, not just the Go
// struct) and that a persisted computation moves them.
func TestStatsExposeDurabilityFields(t *testing.T) {
	_, ts := newTestServer(t, durableConfig(t, t.TempDir()))
	view, code := postJob(t, ts, paperRequest(t))
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	if final := pollJob(t, ts, view.ID); final.Status != StatusDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	if err := dec.Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"jobs_recovered", "jobs_resumed_from_checkpoint", "jobs_retried",
		"checkpoints_written", "journal_bytes", "governor",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("/v1/stats missing %q", key)
		}
	}
	num := func(key string) int64 {
		t.Helper()
		jn, ok := raw[key].(json.Number)
		if !ok {
			t.Fatalf("/v1/stats %q is %T, want a number", key, raw[key])
		}
		n, err := jn.Int64()
		if err != nil {
			t.Fatalf("/v1/stats %q = %v: %v", key, jn, err)
		}
		return n
	}
	if n := num("checkpoints_written"); n == 0 {
		t.Errorf("checkpoints_written = 0 after a checkpointed job")
	}
	if n := num("journal_bytes"); n <= 0 {
		t.Errorf("journal_bytes = %d, want > 0", n)
	}
}
