package server

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
)

// loadFlightrecSchedule loads the committed schedule driving the
// flight-recorder replay suite: one torn WAL write (the persist-failure
// anomaly) plus seeded engine-round delays (making the second job a genuine
// slow-job anomaly). Committed as testdata so the fault sequence is a
// reviewed diff, exactly like chaos_replay.json.
func loadFlightrecSchedule(t *testing.T) *chaos.Schedule {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "flightrec_replay.json"))
	if err != nil {
		t.Fatalf("read committed schedule: %v", err)
	}
	sched, err := chaos.ParseSchedule(data)
	if err != nil {
		t.Fatalf("parse committed schedule: %v", err)
	}
	return sched
}

// flightClock is a deterministic time source: a fixed epoch advancing one
// millisecond per reading. Injected into the recorder so dump timestamps —
// the only wall-clock values that reach dump files — replay identically.
func flightClock() func() time.Time {
	var mu sync.Mutex
	var n int64
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return time.Unix(1700000000, 0).Add(time.Duration(n) * time.Millisecond).UTC()
	}
}

// runFlightrecSequence replays the committed schedule against a fresh
// durable daemon: submission #1 hits the torn WAL write and must dump
// exactly one persist-failure incident; submission #2 runs under the
// scheduled engine delays, trips the slow-job threshold, and must dump
// exactly one slow-job incident. Returns the raw dump files by name.
func runFlightrecSequence(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	sched := loadFlightrecSchedule(t)
	restore, err := sched.Activate()
	if err != nil {
		t.Fatalf("Activate: %v", err)
	}
	defer restore()

	cfg := durableConfig(t, dir)
	cfg.SlowJobThreshold = time.Millisecond
	s := mustNew(t, cfg)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		_ = s.Shutdown(ctx)
		cancel()
	}()
	s.flight.Now = flightClock()

	// Anomaly 1: the torn frame fails the first submission's WAL append.
	if _, err := s.Submit(paperRequest(t)); err == nil {
		t.Fatal("submit under the injected torn write succeeded, want persistence error")
	}

	// Anomaly 2: the next job computes under the scheduled round delays and
	// crosses the 1ms slow-job threshold; the daemon itself stays healthy.
	j, err := s.Submit(slowRequest(t))
	if err != nil {
		t.Fatalf("submit after torn-tail repair: %v", err)
	}
	waitDone(t, j)
	if j.Status() != StatusDone {
		t.Fatalf("slow job ended %s: %s", j.Status(), j.View().Error)
	}

	frdir := filepath.Join(dir, "flightrec")
	names, err := obs.ListFlightDumps(frdir)
	if err != nil {
		t.Fatalf("list dumps: %v", err)
	}
	want := []string{"dump-000001-persist-failure.json", "dump-000002-slow-job.json"}
	if len(names) != len(want) || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("dumps = %v, want exactly %v", names, want)
	}
	out := make(map[string][]byte, len(names))
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(frdir, name))
		if err != nil {
			t.Fatal(err)
		}
		out[name] = data
	}
	return out
}

// TestFlightRecorderChaosDumps drives the committed chaos schedule and
// checks the dumps' content: each anomaly produced exactly one dump, the
// persist-failure dump shows the journal error that caused it, and the
// slow-job dump carries the full admission-to-anomaly event ring.
func TestFlightRecorderChaosDumps(t *testing.T) {
	dumps := runFlightrecSequence(t, t.TempDir())

	pf, err := obs.ReadFlightDump(writeTemp(t, dumps["dump-000001-persist-failure.json"]))
	if err != nil {
		t.Fatal(err)
	}
	if pf.Reason != "persist-failure" || pf.Attrs["job"] != "job-000001" {
		t.Fatalf("persist-failure dump header = %q %v", pf.Reason, pf.Attrs)
	}
	kinds := map[string]int{}
	for _, ev := range pf.Events {
		kinds[ev.Kind]++
	}
	if kinds["admit"] != 1 || kinds["journal.error"] != 1 {
		t.Fatalf("persist-failure ring kinds = %v, want one admit and one journal.error", kinds)
	}

	sj, err := obs.ReadFlightDump(writeTemp(t, dumps["dump-000002-slow-job.json"]))
	if err != nil {
		t.Fatal(err)
	}
	if sj.Reason != "slow-job" || sj.Attrs["job"] != "job-000002" {
		t.Fatalf("slow-job dump header = %q %v", sj.Reason, sj.Attrs)
	}
	var sawAdmit, sawStart, sawSlow bool
	for _, ev := range sj.Events {
		switch {
		case ev.Kind == "admit" && ev.Attrs["job"] == "job-000002":
			sawAdmit = true
		case ev.Kind == "journal.write" && ev.Attrs["job"] == "job-000002" && ev.Attrs["record"] == "start":
			sawStart = true
		case ev.Kind == "slow-job" && ev.Attrs["job"] == "job-000002":
			sawSlow = true
		}
	}
	if !sawAdmit || !sawStart || !sawSlow {
		t.Fatalf("slow-job ring misses the admission-to-anomaly sequence (admit=%v start=%v slow=%v):\n%v",
			sawAdmit, sawStart, sawSlow, sj.Events)
	}
	// The anomaly's ring still holds the earlier incident: that is the
	// black-box property — context survives across anomalies.
	if !containsKind(sj.Events, "journal.error") {
		t.Fatal("slow-job ring lost the earlier torn-write context")
	}
}

// TestFlightRecorderReplayByteIdentical runs the committed schedule twice in
// fresh directories: with the deterministic clock injected, both runs must
// write byte-identical dump files — the property that makes a flight dump a
// trustworthy reconstruction rather than a lossy log.
func TestFlightRecorderReplayByteIdentical(t *testing.T) {
	a := runFlightrecSequence(t, t.TempDir())
	b := runFlightrecSequence(t, t.TempDir())
	if len(a) != len(b) {
		t.Fatalf("run A wrote %d dumps, run B %d", len(a), len(b))
	}
	for name, data := range a {
		if !bytes.Equal(data, b[name]) {
			t.Fatalf("dump %s differs between replays:\n--- A ---\n%s\n--- B ---\n%s", name, data, b[name])
		}
	}
}

func containsKind(evs []obs.FlightEvent, kind string) bool {
	for _, ev := range evs {
		if ev.Kind == kind {
			return true
		}
	}
	return false
}

// writeTemp round-trips dump bytes through a file so ReadFlightDump's real
// loader (the emsstats path) is what parses them.
func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "dump.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}
