package server

import (
	"strconv"
	"sync"
	"time"

	"repro/ems"
	"repro/internal/obs"
)

// progressRounds bounds the per-round history a job retains: enough for a
// dashboard sparkline, bounded so a slowly-converging job cannot grow
// without limit.
const progressRounds = 50

// RoundProgress is one iteration round as exposed by the progress endpoint.
type RoundProgress struct {
	Round int `json:"round"`
	// Delta is the worst per-direction convergence delta of the round.
	Delta float64 `json:"delta"`
	// Evals and Pruned sum the directions' per-round counters.
	Evals  int `json:"evals"`
	Pruned int `json:"pruned"`
	// Estimated marks the synthetic final round an estimation pass reports
	// (the engine's fast-path cutover); the round's delta is then the jump
	// the estimate applied, not an iteration increment.
	Estimated bool `json:"estimated,omitempty"`
}

// DirProgress is the cumulative state of one propagation direction. A
// direction is finished when either Converged or Estimated is set: the
// default fast path ends runs with an estimation pass instead of iterating
// to convergence, and reports the certified ErrorBound alongside.
type DirProgress struct {
	Direction string  `json:"direction"`
	Round     int     `json:"round"`
	Delta     float64 `json:"delta"`
	Evals     int     `json:"evals"`
	Pruned    int     `json:"pruned"`
	Converged bool    `json:"converged"`
	Estimated bool    `json:"estimated,omitempty"`
	// ErrorBound is the certified per-pair error bound of a fast-path run,
	// zero until certification (and always zero for exact runs).
	ErrorBound float64 `json:"error_bound,omitempty"`
}

// ProgressView is the JSON body of GET /v1/jobs/{id}/progress.
type ProgressView struct {
	ID      string `json:"id"`
	Status  Status `json:"status"`
	TraceID string `json:"trace_id,omitempty"`
	// Round counters are present only once the iteration engine has reported
	// a round (composite jobs and cache hits never do).
	Round      int             `json:"round,omitempty"`
	Dirs       []DirProgress   `json:"directions,omitempty"`
	Recent     []RoundProgress `json:"recent_rounds,omitempty"`
	UpdatedMS  float64         `json:"updated_ms,omitempty"` // ms since the last round report
	Spans      []obs.SpanView  `json:"spans,omitempty"`
	CacheHit   bool            `json:"cache_hit,omitempty"`
	Error      string          `json:"error,omitempty"`
	WallMS     float64         `json:"wall_ms,omitempty"`
	Observable bool            `json:"observable"`
	// Batch carries the pair counters of a batch-coordinator job (nil for
	// ordinary match jobs); the full per-pair grid lives at /v1/batch/{id}.
	Batch *BatchProgressView `json:"batch,omitempty"`
}

// progress accumulates the engine's per-round observations for one job. The
// observer goroutine writes, HTTP pollers read; a mutex keeps the view
// coherent (observations arrive at round granularity, so contention is
// negligible).
type progress struct {
	mu      sync.Mutex
	round   int
	dirs    []DirProgress
	recent  []RoundProgress
	updated time.Time
}

// observe folds one engine observation into the progress state.
func (p *progress) observe(ob ems.RoundObservation) {
	rp := RoundProgress{Round: ob.Round}
	dirs := make([]DirProgress, len(ob.Dirs))
	for i, d := range ob.Dirs {
		dirs[i] = DirProgress{
			Direction:  d.Direction.String(),
			Round:      d.Round,
			Delta:      d.Delta,
			Evals:      d.TotalEvals,
			Pruned:     d.TotalPruned,
			Converged:  d.Converged,
			Estimated:  d.Estimated,
			ErrorBound: d.ErrorBound,
		}
		if d.Estimated {
			rp.Estimated = true
		}
		if !d.Converged || d.Round == ob.Round {
			rp.Evals += d.RoundEvals
			rp.Pruned += d.RoundPruned
			if d.Delta > rp.Delta {
				rp.Delta = d.Delta
			}
		}
	}
	p.mu.Lock()
	p.round = ob.Round
	p.dirs = dirs
	p.recent = append(p.recent, rp)
	if len(p.recent) > progressRounds {
		p.recent = p.recent[len(p.recent)-progressRounds:]
	}
	p.updated = time.Now()
	p.mu.Unlock()
}

// stampSpan copies the engine's final counters onto the job's compute span
// as attributes (rounds, total evals, estimation cutover).
func (p *progress) stampSpan(sp *obs.Span) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.round == 0 {
		return
	}
	sp.SetAttr("rounds", strconv.Itoa(p.round))
	evals := 0
	estimated := false
	for _, d := range p.dirs {
		evals += d.Evals
		if d.Estimated {
			estimated = true
		}
	}
	sp.SetAttr("evals", strconv.Itoa(evals))
	if estimated {
		sp.SetAttr("estimated", "true")
	}
}

// fill copies the accumulated state into a view.
func (p *progress) fill(v *ProgressView) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v.Round = p.round
	v.Dirs = append([]DirProgress(nil), p.dirs...)
	v.Recent = append([]RoundProgress(nil), p.recent...)
	if !p.updated.IsZero() {
		v.UpdatedMS = float64(time.Since(p.updated).Microseconds()) / 1000
	}
}

// Progress snapshots a job's live progress: lifecycle state, the engine's
// per-round trajectory (when the job drives the iteration engine and has
// started), and the trace's span timeline so far.
func (j *Job) Progress() ProgressView {
	view := j.View()
	v := ProgressView{
		ID:       view.ID,
		Status:   view.Status,
		TraceID:  view.TraceID,
		CacheHit: view.CacheHit,
		Error:    view.Error,
		WallMS:   view.WallMS,
	}
	// trace, prog and batch are immutable once the job is shared; no lock
	// needed.
	v.Observable = j.prog != nil || j.batch != nil
	if j.prog != nil {
		j.prog.fill(&v)
	}
	if j.batch != nil {
		v.Batch = j.batch.progress()
	}
	if j.trace != nil {
		v.Spans = j.trace.Snapshot()
	}
	return v
}
