package server

import (
	"sync"
	"testing"
	"time"
)

// mutexMetrics replicates the pre-atomic Metrics implementation so the two
// synchronization strategies can be compared head to head:
//
//	go test ./internal/server/ -bench 'MetricsContention' -cpu 1,4,8
type mutexMetrics struct {
	mu        sync.Mutex
	submitted uint64
	cacheHits uint64
	completed uint64
	totalWall time.Duration
	timedJobs uint64
}

func (m *mutexMetrics) Submitted() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

func (m *mutexMetrics) CacheHit() {
	m.mu.Lock()
	m.cacheHits++
	m.mu.Unlock()
}

func (m *mutexMetrics) JobDone(wall time.Duration) {
	m.mu.Lock()
	m.completed++
	m.timedJobs++
	m.totalWall += wall
	m.mu.Unlock()
}

// BenchmarkMetricsContentionMutex measures the lock-based strategy under the
// submission hot path (one counter bump per event) with all goroutines
// hammering the same struct.
func BenchmarkMetricsContentionMutex(b *testing.B) {
	var m mutexMetrics
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Submitted()
			m.CacheHit()
		}
	})
}

// BenchmarkMetricsContentionAtomic is the same workload against the real
// (atomic) Metrics.
func BenchmarkMetricsContentionAtomic(b *testing.B) {
	var m Metrics
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Submitted()
			m.CacheHit()
		}
	})
}

// BenchmarkMetricsJobDoneMutex / ...Atomic compare the heavier completion
// path, which touches five fields including a running maximum.
func BenchmarkMetricsJobDoneMutex(b *testing.B) {
	var m mutexMetrics
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.JobDone(time.Millisecond)
		}
	})
}

func BenchmarkMetricsJobDoneAtomic(b *testing.B) {
	var m Metrics
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.JobDone(StatusDone, time.Millisecond, true)
		}
	})
}
