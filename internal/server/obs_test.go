package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMetricsExposition is the acceptance check of GET /metrics: every line
// is valid Prometheus text exposition, and the three instrument kinds are
// all represented with live values after one completed job.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, quietConfig(Config{Workers: 2}))
	view, code := postJob(t, ts, paperRequest(t))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if final := pollJob(t, ts, view.ID); final.Status != StatusDone {
		t.Fatalf("job ended %q: %s", final.Status, final.Error)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(body))
	lines := 0
	for sc.Scan() {
		lines++
		if !obs.ValidExpositionLine(sc.Text()) {
			t.Errorf("malformed exposition line: %q", sc.Text())
		}
	}
	if lines < 20 {
		t.Fatalf("suspiciously short exposition (%d lines):\n%s", lines, body)
	}
	text := string(body)
	for _, want := range []string{
		// counter (from the job path), gauge, histogram — one of each kind.
		"emsd_jobs_submitted_total 1",
		"# TYPE emsd_jobs_running gauge",
		"# TYPE emsd_job_duration_seconds histogram",
		"emsd_job_duration_seconds_count 1",
		`emsd_build_info{version=`,
		// the middleware saw at least the submit and the polls
		`emsd_http_requests_total{route="/v1/jobs",method="POST",code="202"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTracePropagation: the client's X-Request-ID becomes the job's trace
// ID, is echoed on the response, and surfaces in every job view; absent a
// header, the server generates one.
func TestTracePropagation(t *testing.T) {
	_, ts := newTestServer(t, quietConfig(Config{Workers: 2}))
	body, err := json.Marshal(paperRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	const clientID = "trace-e2e-0001"
	req.Header.Set(obs.RequestIDHeader, clientID)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != clientID {
		t.Errorf("response echoed %q, want %q", got, clientID)
	}
	if view.TraceID != clientID {
		t.Errorf("submit view trace_id = %q, want %q", view.TraceID, clientID)
	}
	final := pollJob(t, ts, view.ID)
	if final.TraceID != clientID {
		t.Errorf("final view trace_id = %q, want %q", final.TraceID, clientID)
	}

	// No header: a trace ID is generated, non-empty, and stable across views.
	v2, code := postJob(t, ts, paperRequest(t))
	if code != http.StatusAccepted {
		t.Fatalf("second submit status %d", code)
	}
	if v2.TraceID == "" {
		t.Error("no trace ID generated")
	}
	if got := pollJob(t, ts, v2.ID); got.TraceID != v2.TraceID {
		t.Errorf("trace ID changed between views: %q then %q", v2.TraceID, got.TraceID)
	}
}

func getProgress(t *testing.T, ts *httptest.Server, id string) ProgressView {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/progress status %d", resp.StatusCode)
	}
	var pv ProgressView
	if err := json.NewDecoder(resp.Body).Decode(&pv); err != nil {
		t.Fatal(err)
	}
	return pv
}

// TestProgressEndpoint submits a deliberately slow pair, watches the
// progress endpoint report advancing rounds with deltas and evaluation
// counts while the job runs, and checks the final view is complete: both
// directions, a bounded recent-round history, and the span timeline.
func TestProgressEndpoint(t *testing.T) {
	_, ts := newTestServer(t, quietConfig(Config{Workers: 1}))
	req := JobRequest{
		Log1: LogInput{Name: "P1", CSV: logCSV(t, permLog(30, 40, "a", 1))},
		Log2: LogInput{Name: "P2", CSV: logCSV(t, permLog(30, 40, "b", 2))},
	}
	view, code := postJob(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	// Watch it run. The pair is dense enough for tens of rounds, so at least
	// one poll should catch the engine mid-flight; if the machine is fast
	// enough to finish first, the terminal view still proves the plumbing.
	sawLive := false
	for {
		pv := getProgress(t, ts, view.ID)
		if pv.Status == StatusRunning && pv.Round > 0 {
			sawLive = true
			if len(pv.Dirs) == 0 {
				t.Error("running progress without direction stats")
			}
			if len(pv.Recent) == 0 {
				t.Error("running progress without recent rounds")
			}
		}
		if pv.Status == StatusDone || pv.Status == StatusFailed || pv.Status == StatusCancelled {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	final := getProgress(t, ts, view.ID)
	if final.Status != StatusDone {
		t.Fatalf("job ended %q: %s", final.Status, final.Error)
	}
	if !final.Observable {
		t.Fatal("leader job not observable")
	}
	if final.Round == 0 {
		t.Error("no rounds reported")
	}
	if len(final.Dirs) != 2 {
		t.Fatalf("%d directions, want 2", len(final.Dirs))
	}
	for _, d := range final.Dirs {
		if !d.Converged && !d.Estimated {
			t.Errorf("direction %s neither converged nor estimated in final progress", d.Direction)
		}
		if d.Estimated && d.ErrorBound <= 0 {
			t.Errorf("direction %s estimated without a certified error bound", d.Direction)
		}
		if d.Evals == 0 {
			t.Errorf("direction %s reports zero evaluations", d.Direction)
		}
	}
	if len(final.Recent) == 0 || len(final.Recent) > progressRounds {
		t.Errorf("recent history has %d entries (cap %d)", len(final.Recent), progressRounds)
	}
	last := final.Recent[len(final.Recent)-1]
	if last.Round != final.Round {
		t.Errorf("last recent round %d != round %d", last.Round, final.Round)
	}
	spans := map[string]bool{}
	for _, s := range final.Spans {
		spans[s.Name] = true
	}
	for _, want := range []string{"parse", "graph-build", "select"} {
		if !spans[want] {
			t.Errorf("span %q missing from progress view (got %v)", want, final.Spans)
		}
	}
	if !sawLive {
		t.Logf("note: job finished before a live poll; terminal progress verified only")
	}
}

// TestProgressOfCacheHit: a cache-hit job is not observable but still
// reports its status and trace.
func TestProgressOfCacheHit(t *testing.T) {
	_, ts := newTestServer(t, quietConfig(Config{Workers: 2}))
	v1, _ := postJob(t, ts, paperRequest(t))
	pollJob(t, ts, v1.ID)
	v2, _ := postJob(t, ts, paperRequest(t))
	final := pollJob(t, ts, v2.ID)
	if !final.CacheHit {
		t.Fatalf("second job was not a cache hit: %+v", final)
	}
	pv := getProgress(t, ts, v2.ID)
	if pv.Observable {
		t.Error("cache hit claims engine observability")
	}
	if pv.TraceID == "" {
		t.Error("cache hit lost its trace")
	}
}

func TestVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, quietConfig(Config{Workers: 1}))
	resp, err := ts.Client().Get(ts.URL + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v VersionInfo
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.GoVersion == "" || v.Version == "" || v.Revision == "" {
		t.Errorf("incomplete version info: %+v", v)
	}
}

// syncWriter serializes the slog handler's writes against the test's reads.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestSlowJobTimeline: with a threshold of 1ns every computed job is "slow",
// so completing one must emit the WARN record carrying the span timeline.
func TestSlowJobTimeline(t *testing.T) {
	var logw syncWriter
	cfg := Config{
		Workers:          1,
		SlowJobThreshold: time.Nanosecond,
		Log:              slog.New(slog.NewTextHandler(&logw, nil)),
	}
	_, ts := newTestServer(t, cfg)
	view, _ := postJob(t, ts, paperRequest(t))
	if final := pollJob(t, ts, view.ID); final.Status != StatusDone {
		t.Fatalf("job ended %q", final.Status)
	}
	out := logw.String()
	if !strings.Contains(out, "slow job") {
		t.Fatalf("no slow-job record in log:\n%s", out)
	}
	for _, want := range []string{"job_id=" + view.ID, "trace_id=" + view.TraceID, "graph-build", "select"} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-job record missing %q:\n%s", want, out)
		}
	}
}
