package server

import (
	"sync"
	"testing"
	"time"
)

func TestMetricsCountersAndRates(t *testing.T) {
	m := &Metrics{}
	m.Submitted()
	m.Submitted()
	m.Submitted()
	m.CacheMiss()
	m.CacheHit()
	m.CacheHit()
	m.JobDone(StatusDone, 10*time.Millisecond, true)
	m.JobDone(StatusDone, 30*time.Millisecond, true)
	m.JobDone(StatusFailed, 0, false)
	m.JobDone(StatusCancelled, 0, false)
	s := m.Snapshot()
	if s.Submitted != 3 || s.Completed != 2 || s.Failed != 1 || s.Cancelled != 1 {
		t.Errorf("counters = %+v", s)
	}
	if s.CacheHits != 2 || s.CacheMisses != 1 {
		t.Errorf("cache counters = %+v", s)
	}
	if want := 2.0 / 3.0; s.CacheHitRate < want-1e-9 || s.CacheHitRate > want+1e-9 {
		t.Errorf("hit rate = %g, want %g", s.CacheHitRate, want)
	}
	if s.AvgWallMillis < 19 || s.AvgWallMillis > 21 {
		t.Errorf("avg wall = %g ms, want ~20", s.AvgWallMillis)
	}
	if s.MaxWallMillis < 29 || s.MaxWallMillis > 31 {
		t.Errorf("max wall = %g ms, want ~30", s.MaxWallMillis)
	}
	if s.LastWallMillis < 29 || s.LastWallMillis > 31 {
		t.Errorf("last wall = %g ms, want ~30", s.LastWallMillis)
	}
}

func TestMetricsZeroValueSnapshot(t *testing.T) {
	var m Metrics
	s := m.Snapshot()
	if s.CacheHitRate != 0 || s.AvgWallMillis != 0 {
		t.Errorf("zero-value snapshot not zero: %+v", s)
	}
}

// TestMetricsConcurrent exercises every mutator from many goroutines; run
// with -race this pins the "safe for concurrent use" contract.
func TestMetricsConcurrent(t *testing.T) {
	m := &Metrics{}
	var wg sync.WaitGroup
	const per = 100
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Submitted()
				m.CacheMiss()
				m.CacheHit()
				m.JobDone(StatusDone, time.Millisecond, true)
				m.Snapshot()
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Submitted != 8*per || s.Completed != 8*per {
		t.Errorf("lost updates: %+v", s)
	}
}
