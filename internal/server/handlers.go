package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/ems"
	"repro/internal/cluster"
	"repro/internal/obs"
)

// Handler returns the HTTP API:
//
//	POST   /v1/jobs               submit a match job (forwarded to the ring owner in a cluster)
//	GET    /v1/jobs               list jobs (newest first; ?status=, ?limit=)
//	GET    /v1/jobs/{id}          poll job status
//	GET    /v1/jobs/{id}/result   fetch the finished result
//	GET    /v1/jobs/{id}/progress live engine progress and span timeline
//	DELETE /v1/jobs/{id}          cancel a queued or running job
//	POST   /v1/batch              submit a grid of pairs fanned across the cluster
//	GET    /v1/batch/{id}         per-pair results and consensus of a batch
//	GET    /v1/traces             recent stored traces on this node (?limit=)
//	GET    /v1/traces/{id}        cluster-assembled span tree of one trace
//	GET    /v1/cluster            ring membership and peer health
//	GET    /v1/stats              service metrics (JSON)
//	GET    /v1/version            build identity of the binary
//	GET    /metrics               Prometheus exposition
//	GET    /healthz               liveness probe (503 while shutting down)
//
// Every route runs behind the trace middleware (X-Request-ID in, echoed
// back out) and records per-route request counts, latency histograms, and
// an in-flight gauge into the /metrics registry.
//
// In a cluster, job handles returned for forwarded submissions are
// qualified ("job-000007@node-b"); GET/DELETE on a qualified ID from any
// node is relayed to the owning node, so a client may stick to one node for
// its whole exchange.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.Handler) {
		mux.Handle(pattern, s.obs.http.Wrap(route, h))
	}
	handle("GET /healthz", "/healthz", http.HandlerFunc(s.handleHealth))
	handle("GET /metrics", "/metrics", s.obs.reg)
	handle("GET /v1/stats", "/v1/stats", http.HandlerFunc(s.handleStats))
	handle("GET /v1/version", "/v1/version", http.HandlerFunc(s.handleVersion))
	handle("GET /v1/cluster", "/v1/cluster", http.HandlerFunc(s.handleCluster))
	handle("POST /v1/jobs", "/v1/jobs", http.HandlerFunc(s.handleSubmit))
	handle("GET /v1/jobs", "/v1/jobs", http.HandlerFunc(s.handleJobs))
	handle("GET /v1/jobs/{id}", "/v1/jobs/{id}", http.HandlerFunc(s.handleJob))
	handle("GET /v1/jobs/{id}/result", "/v1/jobs/{id}/result", http.HandlerFunc(s.handleResult))
	handle("GET /v1/jobs/{id}/progress", "/v1/jobs/{id}/progress", http.HandlerFunc(s.handleProgress))
	handle("DELETE /v1/jobs/{id}", "/v1/jobs/{id}", http.HandlerFunc(s.handleCancel))
	handle("POST /v1/batch", "/v1/batch", http.HandlerFunc(s.handleBatchSubmit))
	handle("GET /v1/batch/{id}", "/v1/batch/{id}", http.HandlerFunc(s.handleBatch))
	handle("GET /v1/traces", "/v1/traces", http.HandlerFunc(s.handleTraces))
	handle("GET /v1/traces/{id}", "/v1/traces/{id}", http.HandlerFunc(s.handleTrace))
	return obs.TraceMiddlewareWith(mux, obs.TraceConfig{
		Node:         s.cfg.NodeID,
		OnSpanEnd:    s.observeSpanEnd,
		OnRequestEnd: s.recordTrace,
	})
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

// healthView is the /healthz body; the cluster fields let an operator (or a
// load balancer) see a node's identity and its view of the peers in one
// probe.
type healthView struct {
	Status  string `json:"status"`
	NodeID  string `json:"node_id"`
	Role    string `json:"role"`
	Peers   int    `json:"peers"`
	PeersUp int    `json:"peers_up"`
	// Governor is the memory governor's state ("ok", "pressured",
	// "saturated"); Load is the committed fraction of the budget. A
	// saturated node still answers 200 — it is alive, just busy — so
	// schedulers read the field rather than the status code.
	Governor string  `json:"governor"`
	Load     float64 `json:"load"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	s.mu.Lock()
	if s.closed {
		// Draining: load balancers should stop routing here while in-flight
		// jobs finish.
		status, code = "shutting-down", http.StatusServiceUnavailable
	}
	s.mu.Unlock()
	writeJSON(w, code, healthView{
		Status: status, NodeID: s.cfg.NodeID, Role: s.cluster.role(),
		Peers: len(s.cluster.clients), PeersUp: s.cluster.peersUp(),
		Governor: string(s.governorState()), Load: s.governorLoad(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// versionView embeds the build identity plus the node's cluster identity.
type versionView struct {
	VersionInfo
	NodeID  string `json:"node_id"`
	Role    string `json:"role"`
	Peers   int    `json:"peers"`
	PeersUp int    `json:"peers_up"`
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, versionView{
		VersionInfo: Version(), NodeID: s.cfg.NodeID, Role: s.cluster.role(),
		Peers: len(s.cluster.clients), PeersUp: s.cluster.peersUp(),
	})
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ClusterInfo())
}

// routedJob resolves the {id} path value of a job route: an ID qualified
// with a peer's node ID is relayed to that peer (handled=true, response
// already written); otherwise the local ID is returned. IDs qualified with
// the local node's own ID are served locally, so a handle survives being
// passed back to its owner.
func (s *Server) routedJob(w http.ResponseWriter, r *http.Request, suffix string) (string, bool) {
	id, nodeID := cluster.SplitJobID(r.PathValue("id"))
	if nodeID == "" || nodeID == s.cluster.self.ID {
		return id, false
	}
	s.proxyJob(w, r, nodeID, id, suffix)
	return "", true
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	id, handled := s.routedJob(w, r, "/progress")
	if handled {
		return
	}
	job, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, job.Progress())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// MaxBytesReader (unlike a plain LimitReader) yields a typed error on
	// overrun and closes the connection, so oversized uploads get a clean
	// 413 instead of being silently truncated into a JSON parse error. The
	// body is read whole: a forwarded submission must relay the client's
	// exact bytes so the owner journals what the client sent.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.metrics.Rejected()
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("reading request body: %v", err)})
		return
	}
	var req JobRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.Rejected()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("invalid request body: %v", err)})
		return
	}
	tr := s.traceOrNew(r.Context())
	endParse := tr.Span("parse")
	pj, err := s.prepare(req)
	endParse()
	if err != nil {
		s.metrics.Rejected()
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	// Cluster placement: a fresh client submission whose content key hashes
	// to a peer is forwarded there. A request already forwarded once always
	// executes here — two nodes briefly disagreeing about ownership must not
	// bounce a job around the ring.
	if s.cluster.clustered() && r.Header.Get(cluster.ForwardedHeader) == "" {
		if s.forwardSubmit(w, r, body, pj.key) {
			return
		}
	}
	job, err := s.submitPrepared(req, tr, pj)
	var tle *ems.TooLargeError
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, job.View())
	case errors.As(err, &tle):
		// The job can never fit the budget: permanent, so 413 not 503 — no
		// Retry-After, retrying the same job would only be rejected again.
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: tle.Error()})
	case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrSaturated):
		// Transient overload: hint when to come back from the queue's actual
		// drain rate instead of a fixed second.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case IsRequestError(err):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// handleJobs lists recent jobs, newest first. ?status= filters by lifecycle
// state, ?limit= bounds the page (default 100, capped at 1000).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	status := Status(q.Get("status"))
	switch status {
	case "", StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCancelled:
	default:
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: fmt.Sprintf("unknown status %q (want queued, running, done, failed or cancelled)", status)})
		return
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("limit must be a positive integer, got %q", v)})
			return
		}
		limit = n
	}
	if limit > 1000 {
		limit = 1000
	}
	views := s.JobViews(status, limit)
	writeJSON(w, http.StatusOK, struct {
		Jobs  []JobView `json:"jobs"`
		Count int       `json:"count"`
	}{Jobs: views, Count: len(views)})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, handled := s.routedJob(w, r, "")
	if handled {
		return
	}
	job, ok := s.Cancel(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	// A running job finishes asynchronously (within about one iteration
	// round); the returned view may still say "running". Pollers observe the
	// terminal "cancelled" state shortly after.
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, handled := s.routedJob(w, r, "")
	if handled {
		return
	}
	job, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id, handled := s.routedJob(w, r, "/result")
	if handled {
		return
	}
	job, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	res, ok := job.Result()
	if !ok {
		view := job.View()
		code := http.StatusConflict
		if view.Status == StatusQueued || view.Status == StatusRunning {
			// Not ready yet: tell pollers to come back.
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, code, view)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = res.WriteJSON(w)
}

func (s *Server) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.Rejected()
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("invalid request body: %v", err)})
		return
	}
	job, err := s.SubmitBatch(r.Context(), req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, job.View())
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case IsRequestError(err):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Batch(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown batch"})
		return
	}
	writeJSON(w, http.StatusOK, v)
}
