package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/obs"
)

// Handler returns the HTTP API:
//
//	POST   /v1/jobs               submit a match job
//	GET    /v1/jobs/{id}          poll job status
//	GET    /v1/jobs/{id}/result   fetch the finished result
//	GET    /v1/jobs/{id}/progress live engine progress and span timeline
//	DELETE /v1/jobs/{id}          cancel a queued or running job
//	GET    /v1/stats              service metrics (JSON)
//	GET    /v1/version            build identity of the binary
//	GET    /metrics               Prometheus exposition
//	GET    /healthz               liveness probe (503 while shutting down)
//
// Every route runs behind the trace middleware (X-Request-ID in, echoed
// back out) and records per-route request counts, latency histograms, and
// an in-flight gauge into the /metrics registry.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.Handler) {
		mux.Handle(pattern, s.obs.http.Wrap(route, h))
	}
	handle("GET /healthz", "/healthz", http.HandlerFunc(s.handleHealth))
	handle("GET /metrics", "/metrics", s.obs.reg)
	handle("GET /v1/stats", "/v1/stats", http.HandlerFunc(s.handleStats))
	handle("GET /v1/version", "/v1/version", http.HandlerFunc(s.handleVersion))
	handle("POST /v1/jobs", "/v1/jobs", http.HandlerFunc(s.handleSubmit))
	handle("GET /v1/jobs/{id}", "/v1/jobs/{id}", http.HandlerFunc(s.handleJob))
	handle("GET /v1/jobs/{id}/result", "/v1/jobs/{id}/result", http.HandlerFunc(s.handleResult))
	handle("GET /v1/jobs/{id}/progress", "/v1/jobs/{id}/progress", http.HandlerFunc(s.handleProgress))
	handle("DELETE /v1/jobs/{id}", "/v1/jobs/{id}", http.HandlerFunc(s.handleCancel))
	return obs.TraceMiddleware(mux)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	s.mu.Lock()
	if s.closed {
		// Draining: load balancers should stop routing here while in-flight
		// jobs finish.
		status, code = "shutting-down", http.StatusServiceUnavailable
	}
	s.mu.Unlock()
	writeJSON(w, code, map[string]string{"status": status})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Version())
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, job.Progress())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	// MaxBytesReader (unlike a plain LimitReader) yields a typed error on
	// overrun and closes the connection, so oversized uploads get a clean
	// 413 instead of being silently truncated into a JSON parse error.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metrics.Rejected()
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("request body exceeds the %d-byte limit", tooLarge.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("invalid request body: %v", err)})
		return
	}
	job, err := s.SubmitContext(r.Context(), req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, job.View())
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case IsRequestError(err):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	// A running job finishes asynchronously (within about one iteration
	// round); the returned view may still say "running". Pollers observe the
	// terminal "cancelled" state shortly after.
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	res, ok := job.Result()
	if !ok {
		view := job.View()
		code := http.StatusConflict
		if view.Status == StatusQueued || view.Status == StatusRunning {
			// Not ready yet: tell pollers to come back.
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, code, view)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = res.WriteJSON(w)
}
