package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// openT opens a journal and fails the test on error.
func openT(t *testing.T, dir string, opts Options) (*Journal, *Recovery) {
	t.Helper()
	j, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j, rec
}

func record(i int) []byte { return []byte(fmt.Sprintf("record-%03d-payload", i)) }

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	j, rec := openT(t, dir, Options{})
	if len(rec.Records) != 0 || rec.Snapshot != nil || rec.Torn {
		t.Fatalf("fresh journal recovered %+v", rec)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if err := j.Append(record(i)); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if err := j.Append([]byte{}, []byte("batched-1"), []byte("batched-2")); err != nil {
		t.Fatalf("batched Append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec2 := openT(t, dir, Options{})
	if got := len(rec2.Records); got != n+3 {
		t.Fatalf("recovered %d records, want %d", got, n+3)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(rec2.Records[i], record(i)) {
			t.Fatalf("record %d = %q", i, rec2.Records[i])
		}
	}
	if len(rec2.Records[n]) != 0 || string(rec2.Records[n+2]) != "batched-2" {
		t.Fatalf("batched records corrupted: %q", rec2.Records[n:])
	}
	if rec2.Torn {
		t.Fatal("clean journal reported a torn tail")
	}
}

func TestRotationSpansSegments(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{RotateBytes: 64})
	const n = 40
	for i := 0; i < n; i++ {
		if err := j.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	j.Close()
	_, rec := openT(t, dir, Options{})
	if len(rec.Records) != n {
		t.Fatalf("recovered %d records across segments, want %d", len(rec.Records), n)
	}
}

func TestCompactionCollapsesIntoSnapshot(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{RotateBytes: 64})
	for i := 0; i < 20; i++ {
		if err := j.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact([]byte("snapshot-state")); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != 1 {
		t.Fatalf("compaction left %d segments, want 1", len(segs))
	}
	for i := 20; i < 25; i++ {
		if err := j.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	_, rec := openT(t, dir, Options{})
	if string(rec.Snapshot) != "snapshot-state" {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d post-snapshot records, want 5", len(rec.Records))
	}
	for i, r := range rec.Records {
		if !bytes.Equal(r, record(20+i)) {
			t.Fatalf("post-snapshot record %d = %q", i, r)
		}
	}
}

// TestTornTailEveryByteOffset is the recovery table test: a journal truncated
// at every possible byte offset must replay without panicking and recover
// exactly the records whose frames lie entirely within the valid prefix.
func TestTornTailEveryByteOffset(t *testing.T) {
	src := t.TempDir()
	j, _ := openT(t, src, Options{})
	const n = 6
	var ends []int64 // cumulative end offset of each record's frame
	off := int64(magicLen)
	for i := 0; i < n; i++ {
		r := record(i)
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
		off += frameHeaderLen + int64(len(r))
		ends = append(ends, off)
	}
	j.Close()
	seg, err := filepath.Glob(filepath.Join(src, "wal-*.log"))
	if err != nil || len(seg) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", seg, err)
	}
	full, err := os.ReadFile(seg[0])
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != off {
		t.Fatalf("segment is %d bytes, frames account for %d", len(full), off)
	}
	for cut := 0; cut <= len(full); cut++ {
		cut := cut
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(seg[0])), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		want := 0
		for _, end := range ends {
			if int64(cut) >= end {
				want++
			}
		}
		if len(rec.Records) != want {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(rec.Records), want)
		}
		for i := 0; i < want; i++ {
			if !bytes.Equal(rec.Records[i], record(i)) {
				t.Fatalf("cut=%d: record %d corrupted: %q", cut, i, rec.Records[i])
			}
		}
		atBoundary := int64(cut) == int64(magicLen)
		for _, end := range ends {
			if int64(cut) == end {
				atBoundary = true
			}
		}
		if rec.Torn == atBoundary && cut != len(full) {
			t.Fatalf("cut=%d: Torn = %v, at frame boundary = %v", cut, rec.Torn, atBoundary)
		}
		// The truncated journal must stay usable: append, reopen, verify the
		// new record lands after the recovered prefix.
		if err := j2.Append([]byte("after-tear")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		j2.Close()
		_, rec3, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if len(rec3.Records) != want+1 || string(rec3.Records[want]) != "after-tear" {
			t.Fatalf("cut=%d: after append recovered %d records", cut, len(rec3.Records))
		}
		if rec3.Torn {
			t.Fatalf("cut=%d: second replay still torn after truncation", cut)
		}
	}
}

func TestTornMiddleSegmentDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{RotateBytes: 64})
	for i := 0; i < 20; i++ {
		if err := j.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Corrupt a byte in the middle of the second segment's records.
	data, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	data[magicLen+frameHeaderLen] ^= 0xff
	if err := os.WriteFile(segs[1], data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir, Options{})
	if !rec.Torn {
		t.Fatal("mid-journal corruption not reported as torn")
	}
	if rec.DroppedBytes == 0 {
		t.Fatal("dropped bytes not accounted")
	}
	for i, r := range rec.Records {
		if !bytes.Equal(r, record(i)) {
			t.Fatalf("prefix record %d corrupted", i)
		}
	}
	if len(rec.Records) >= 20 {
		t.Fatal("corrupt suffix was not dropped")
	}
}

func TestCorruptSnapshotIsReported(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := j.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact([]byte("state")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.bin"))
	if len(snaps) != 1 {
		t.Fatalf("want 1 snapshot, got %d", len(snaps))
	}
	data, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(snaps[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, dir, Options{})
	if !rec.SnapshotLost {
		t.Fatal("corrupt snapshot not reported")
	}
	if rec.Snapshot != nil {
		t.Fatal("corrupt snapshot returned as valid")
	}
	if len(rec.Records) != 1 || string(rec.Records[0]) != "tail" {
		t.Fatalf("post-snapshot records = %q", rec.Records)
	}
}

func TestFailpointSyncFailure(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	if err := j.Append(record(0)); err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("disk on fire")
	restore := SetFailpoint(func(op Op) error {
		if op == OpSync {
			return boom
		}
		return nil
	})
	err := j.Append(record(1))
	restore()
	if err == nil {
		t.Fatal("Append succeeded despite failing fsync")
	}
	// The first record was committed before the failure and must survive.
	j.Close()
	_, rec := openT(t, dir, Options{})
	if len(rec.Records) < 1 || !bytes.Equal(rec.Records[0], record(0)) {
		t.Fatalf("committed record lost after sync failure: %q", rec.Records)
	}
}

func TestFailpointShortWriteLeavesRecoverableTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	if err := j.Append(record(0)); err != nil {
		t.Fatal(err)
	}
	restore := SetFailpoint(func(op Op) error {
		if op == OpWrite {
			return ErrShortWrite
		}
		return nil
	})
	err := j.Append(record(1))
	restore()
	if err == nil {
		t.Fatal("Append succeeded despite injected short write")
	}
	j.Close()
	j2, rec := openT(t, dir, Options{})
	if !rec.Torn {
		t.Fatal("short write did not leave a torn tail")
	}
	if len(rec.Records) != 1 || !bytes.Equal(rec.Records[0], record(0)) {
		t.Fatalf("recovered %q, want just record 0", rec.Records)
	}
	if err := j2.Append(record(2)); err != nil {
		t.Fatalf("append after torn-tail recovery: %v", err)
	}
	j2.Close()
	_, rec2 := openT(t, dir, Options{})
	if len(rec2.Records) != 2 || !bytes.Equal(rec2.Records[1], record(2)) {
		t.Fatalf("post-recovery append lost: %q", rec2.Records)
	}
}

// TestAppendAfterENOSPCKeepsJournalServiceable is the regression test for
// the torn-append wedge: a failed append (ENOSPC via failpoint) used to
// leave a partial frame in the active segment, and the NEXT append would
// write after the tear — replay then truncated at the tear and silently
// dropped every later committed record. The journal must instead repair the
// tail and keep committing.
func TestAppendAfterENOSPCKeepsJournalServiceable(t *testing.T) {
	enospc := fmt.Errorf("write wal: %w", syscall.ENOSPC)
	for _, op := range []Op{OpWrite, OpSync} {
		t.Run(string(op), func(t *testing.T) {
			dir := t.TempDir()
			j, _ := openT(t, dir, Options{})
			if err := j.Append(record(0)); err != nil {
				t.Fatal(err)
			}
			fail := op
			restore := SetFailpoint(func(o Op) error {
				if o == fail {
					if fail == OpWrite {
						return ErrShortWrite // tear the frame, then fail
					}
					return enospc
				}
				return nil
			})
			if err := j.Append(record(1)); err == nil {
				restore()
				t.Fatal("Append succeeded despite injected disk failure")
			}
			restore()
			// The daemon keeps serving: later appends on the SAME handle must
			// commit durably, not extend a torn tail.
			for i := 2; i <= 4; i++ {
				if err := j.Append(record(i)); err != nil {
					t.Fatalf("Append(%d) after disk failure: %v", i, err)
				}
			}
			j.Close()
			_, rec := openT(t, dir, Options{})
			want := [][]byte{record(0), record(2), record(3), record(4)}
			if len(rec.Records) != len(want) {
				t.Fatalf("recovered %d records %q, want %d", len(rec.Records), rec.Records, len(want))
			}
			for i, r := range want {
				if !bytes.Equal(rec.Records[i], r) {
					t.Fatalf("record %d = %q, want %q", i, rec.Records[i], r)
				}
			}
			if rec.Torn {
				t.Fatal("repaired journal still reports a torn tail on replay")
			}
		})
	}
}

// TestRotationFailureRecovers: when creating the next segment fails (full
// disk), the journal must not wedge — the failing append reports the error
// and a later append re-attempts the rotation.
func TestRotationFailureRecovers(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{RotateBytes: 48})
	if err := j.Append(record(0)); err != nil {
		t.Fatal(err)
	}
	// Force rotation by exceeding RotateBytes while segment creation fails.
	restore := SetFailpoint(func(o Op) error {
		if o == OpCreate {
			return syscall.ENOSPC
		}
		return nil
	})
	err := j.Append(record(1))
	restore()
	if err == nil {
		t.Fatal("Append succeeded despite injected rotation failure")
	}
	for i := 2; i <= 3; i++ {
		if err := j.Append(record(i)); err != nil {
			t.Fatalf("Append(%d) after failed rotation: %v", i, err)
		}
	}
	j.Close()
	_, rec := openT(t, dir, Options{})
	if len(rec.Records) != 4 {
		t.Fatalf("recovered %d records %q, want 4", len(rec.Records), rec.Records)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := WriteFileAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v2" {
		t.Fatalf("read back %q, %v", data, err)
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("temporary files left behind: %v", tmps)
	}
}

func TestSizeTracksLiveSegments(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{RotateBytes: 64})
	if j.Size() != magicLen {
		t.Fatalf("fresh journal size = %d", j.Size())
	}
	for i := 0; i < 20; i++ {
		if err := j.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	grown := j.Size()
	if grown <= magicLen {
		t.Fatalf("size did not grow: %d", grown)
	}
	if err := j.Compact(nil); err != nil {
		t.Fatal(err)
	}
	if j.Size() >= grown {
		t.Fatalf("compaction did not shrink size: %d -> %d", grown, j.Size())
	}
}
