// Package journal implements the crash-safe write-ahead log behind emsd's
// durability layer: an append-only journal of opaque byte records with
// length+CRC32 framing, fsync on commit points, torn-tail-tolerant replay,
// and log rotation with compaction into a snapshot.
//
// On-disk layout of a journal directory:
//
//	wal-<idx>.log   record segments, oldest index first; each starts with an
//	                8-byte magic followed by framed records
//	snap-<idx>.bin  snapshot files; a snapshot with index k replaces every
//	                record in segments with index < k
//	*.tmp           in-progress atomic writes, removed on Open
//
// Every record is framed as a 4-byte little-endian payload length, a 4-byte
// little-endian CRC32-Castagnoli of the payload, and the payload itself. A
// record is committed once Append returns: the frame has been written and
// (unless Options.NoSync) fsynced. Replay reads records until the first
// frame that is truncated, oversized, or fails its checksum — the torn tail
// a crash mid-write leaves behind — and recovers the longest valid prefix,
// truncating the tail so later appends extend committed data.
package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	walMagic  = "EMSJWAL1"
	snapMagic = "EMSJSNP1"
	magicLen  = 8
	// frameHeaderLen is the per-record header: payload length + CRC32.
	frameHeaderLen = 8
)

// ErrClosed is returned by operations on a closed journal.
var ErrClosed = errors.New("journal: closed")

// Options configures a journal. The zero value is production-ready.
type Options struct {
	// NoSync skips every fsync. Replay still works after a clean close, but
	// a crash may lose or tear arbitrarily much of the tail. For tests.
	NoSync bool
	// RotateBytes seals the active segment and starts a new one once it
	// exceeds this size; 0 uses the default 4 MiB. Rotation bounds the cost
	// of the truncate-on-recovery pass, compaction bounds total size.
	RotateBytes int64
	// MaxRecordBytes bounds a single record; larger appends are rejected and
	// larger on-disk length fields are treated as corruption during replay.
	// 0 uses the default 256 MiB.
	MaxRecordBytes int
}

func (o *Options) fill() {
	if o.RotateBytes <= 0 {
		o.RotateBytes = 4 << 20
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = 256 << 20
	}
}

// Recovery reports what Open found on disk.
type Recovery struct {
	// Snapshot is the payload of the newest valid snapshot, nil when none
	// exists.
	Snapshot []byte
	// Records are the committed records after the snapshot, in append order.
	Records [][]byte
	// Torn reports that a torn or corrupt tail was found and dropped; the
	// journal was truncated back to the longest valid prefix.
	Torn bool
	// DroppedBytes counts the bytes discarded with the torn tail.
	DroppedBytes int64
	// SnapshotLost reports that snapshot files existed but none validated;
	// Records then replay over an empty state.
	SnapshotLost bool
}

// Journal is an open write-ahead log. All methods are safe for concurrent
// use.
type Journal struct {
	mu         sync.Mutex
	dir        string
	opts       Options
	active     *os.File
	activeIdx  uint64
	activeSize int64
	sealedSize int64 // bytes in sealed (non-active) segments
	nextIdx    uint64
	closed     bool
	// committed is the byte offset of the active segment up to which frames
	// are known fully written and synced; torn latches that a failed append
	// or sync may have left bytes past it. The pair makes one failed write
	// (ENOSPC, injected fault) fail only its own Append: the next Append
	// first rolls the segment back to committed, so the tear can never be
	// buried under later frames — which replay would then silently drop.
	committed int64
	torn      bool
}

// Open opens (or creates) the journal in dir and replays its contents. The
// returned Recovery holds the snapshot and committed records; the journal is
// positioned to append after the recovered prefix.
func Open(dir string, opts Options) (*Journal, *Recovery, error) {
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	var segs, snaps []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			_ = os.Remove(filepath.Join(dir, name))
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if idx, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64); err == nil {
				segs = append(segs, idx)
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".bin"):
			if idx, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".bin"), 10, 64); err == nil {
				snaps = append(snaps, idx)
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] }) // newest first

	rec := &Recovery{}
	var snapIdx uint64
	haveSnap := false
	for _, idx := range snaps {
		if data, ok := readSnapshot(snapPath(dir, idx), opts.MaxRecordBytes); ok {
			rec.Snapshot = data
			snapIdx = idx
			haveSnap = true
			break
		}
	}
	rec.SnapshotLost = len(snaps) > 0 && !haveSnap

	j := &Journal{dir: dir, opts: opts}

	// Segments older than the snapshot are superseded; drop them. Without a
	// valid snapshot every segment replays (best effort after corruption).
	live := segs[:0]
	for _, idx := range segs {
		if haveSnap && idx < snapIdx {
			_ = os.Remove(segPath(dir, idx))
			continue
		}
		live = append(live, idx)
	}
	segs = live

	for i, idx := range segs {
		path := segPath(dir, idx)
		records, valid, torn := replaySegment(path, opts.MaxRecordBytes)
		rec.Records = append(rec.Records, records...)
		if !torn {
			j.sealedSize += valid
			continue
		}
		// Torn tail: truncate this segment to its valid prefix and drop every
		// later segment — records past a tear are unreachable under the
		// fsync-on-commit discipline, and keeping them would resurrect an
		// inconsistent suffix on the next replay.
		rec.Torn = true
		if size, err := fileSize(path); err == nil {
			rec.DroppedBytes += size - valid
		}
		if err := truncateSegment(path, valid, opts.NoSync); err != nil {
			return nil, nil, err
		}
		j.sealedSize += valid
		for _, later := range segs[i+1:] {
			if size, err := fileSize(segPath(dir, later)); err == nil {
				rec.DroppedBytes += size
			}
			_ = os.Remove(segPath(dir, later))
		}
		segs = segs[:i+1]
		break
	}

	// Open (or create) the active segment: the newest surviving one, or a
	// fresh segment at the snapshot index.
	if len(segs) > 0 {
		j.activeIdx = segs[len(segs)-1]
		size, err := fileSize(segPath(dir, j.activeIdx))
		if err != nil {
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
		j.sealedSize -= size // the active segment is accounted separately
		f, err := os.OpenFile(segPath(dir, j.activeIdx), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
		j.active = f
		j.activeSize = size
		if size < magicLen {
			// The tear ate into the segment header; rebuild it in place.
			if err := j.rewriteActiveHeader(); err != nil {
				return nil, nil, err
			}
		}
	} else {
		j.activeIdx = snapIdx
		f, size, err := createSegment(dir, j.activeIdx, opts.NoSync)
		if err != nil {
			return nil, nil, err
		}
		j.active = f
		j.activeSize = size
	}
	j.nextIdx = j.activeIdx + 1
	j.committed = j.activeSize
	return j, rec, nil
}

// rewriteActiveHeader restores the magic of an active segment whose header
// was torn. Caller guarantees the segment holds no valid records.
func (j *Journal) rewriteActiveHeader() error {
	if err := j.active.Truncate(0); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := j.active.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := j.active.WriteString(walMagic); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if !j.opts.NoSync {
		if err := j.active.Sync(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	j.activeSize = magicLen
	j.committed = magicLen
	return nil
}

// Append commits the given records: all frames are written to the active
// segment and fsynced once. On error nothing is guaranteed committed, but
// the journal stays serviceable: the failed tail is rolled back before the
// next append, so one ENOSPC or injected fault fails one Append, not the
// daemon.
func (j *Journal) Append(recs ...[]byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if err := j.repairLocked(); err != nil {
		return err
	}
	var buf []byte
	for _, r := range recs {
		if len(r) > j.opts.MaxRecordBytes {
			return fmt.Errorf("journal: record of %d bytes exceeds the %d-byte bound", len(r), j.opts.MaxRecordBytes)
		}
		var hdr [frameHeaderLen]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(r)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(r, castagnoli))
		buf = append(buf, hdr[:]...)
		buf = append(buf, r...)
	}
	if err := firePoint(OpWrite); err != nil {
		if errors.Is(err, ErrShortWrite) {
			// Injected torn tail: write only half the frame bytes, then fail.
			n, _ := j.active.Write(buf[:len(buf)/2])
			j.activeSize += int64(n)
			j.torn = j.activeSize > j.committed
			return fmt.Errorf("journal: write: %w", err)
		}
		return fmt.Errorf("journal: write: %w", err)
	}
	n, err := j.active.Write(buf)
	j.activeSize += int64(n)
	if err != nil {
		// A short or failed write may have left a partial frame on disk.
		j.torn = j.activeSize > j.committed
		return fmt.Errorf("journal: write: %w", err)
	}
	if err := j.syncActive(); err != nil {
		// The frame hit the file but its durability is unknown; roll it back
		// on the next append rather than risk replaying past an unsynced gap.
		j.torn = true
		return err
	}
	j.committed = j.activeSize
	if j.activeSize >= j.opts.RotateBytes {
		return j.rotateLocked()
	}
	return nil
}

// repairLocked restores the append invariant after a failed write: the
// active segment is truncated back to the last committed frame boundary
// (and re-created outright after a failed rotation), so appends only ever
// extend committed data. Errors here mean the disk is still refusing
// writes; the journal stays torn and the next append retries.
func (j *Journal) repairLocked() error {
	if j.active == nil {
		// A failed rotation or compaction closed the old segment and could
		// not create the next one; retry the creation.
		f, size, err := createSegment(j.dir, j.nextIdx, j.opts.NoSync)
		if err != nil {
			return err
		}
		j.active = f
		j.activeIdx = j.nextIdx
		j.activeSize, j.committed = size, size
		j.nextIdx++
		j.torn = false
		return nil
	}
	if !j.torn {
		return nil
	}
	if err := j.active.Truncate(j.committed); err != nil {
		return fmt.Errorf("journal: repair: %w", err)
	}
	// Re-position explicitly: segments created by this process are not in
	// O_APPEND mode, and writing at a post-truncate offset would leave a
	// zero-filled hole.
	if _, err := j.active.Seek(j.committed, io.SeekStart); err != nil {
		return fmt.Errorf("journal: repair: %w", err)
	}
	if !j.opts.NoSync {
		if err := j.active.Sync(); err != nil {
			return fmt.Errorf("journal: repair: %w", err)
		}
	}
	j.activeSize = j.committed
	j.torn = false
	return nil
}

func (j *Journal) syncActive() error {
	if err := firePoint(OpSync); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	if j.opts.NoSync {
		return nil
	}
	if err := j.active.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	return nil
}

// rotateLocked seals the active segment and starts wal-<nextIdx>. When the
// new segment cannot be created (a full disk, typically) the journal is
// left without an active segment; the next append re-attempts the creation
// via repairLocked instead of wedging.
func (j *Journal) rotateLocked() error {
	err := j.active.Close()
	j.sealedSize += j.activeSize
	j.active = nil
	if err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	f, size, err := createSegment(j.dir, j.nextIdx, j.opts.NoSync)
	if err != nil {
		return err
	}
	j.active = f
	j.activeIdx = j.nextIdx
	j.activeSize = size
	j.committed = size
	j.torn = false
	j.nextIdx++
	return nil
}

// Compact collapses the journal into the given snapshot: the snapshot is
// written and fsynced, a fresh active segment is started, and every older
// segment and snapshot is removed. Records appended afterwards replay on top
// of the snapshot.
func (j *Journal) Compact(snapshot []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if len(snapshot) > j.opts.MaxRecordBytes {
		return fmt.Errorf("journal: snapshot of %d bytes exceeds the %d-byte bound", len(snapshot), j.opts.MaxRecordBytes)
	}
	k := j.nextIdx
	var frame [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(snapshot)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(snapshot, castagnoli))
	data := make([]byte, 0, magicLen+frameHeaderLen+len(snapshot))
	data = append(data, snapMagic...)
	data = append(data, frame[:]...)
	data = append(data, snapshot...)
	if err := writeFileAtomic(snapPath(j.dir, k), data, j.opts.NoSync); err != nil {
		return err
	}
	// The snapshot is durable; everything before it is now redundant.
	oldActive := j.activeIdx
	cerr := j.active.Close()
	j.active = nil
	j.nextIdx = k // repairLocked retries from here if the next steps fail
	if cerr != nil {
		return fmt.Errorf("journal: compact: %w", cerr)
	}
	f, size, err := createSegment(j.dir, k, j.opts.NoSync)
	if err != nil {
		return err
	}
	j.active = f
	j.activeIdx = k
	j.activeSize = size
	j.committed = size
	j.torn = false
	j.sealedSize = 0
	j.nextIdx = k + 1
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil // cleanup is best-effort
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if idx, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64); err == nil && idx <= oldActive {
				_ = os.Remove(filepath.Join(j.dir, name))
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".bin"):
			if idx, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".bin"), 10, 64); err == nil && idx < k {
				_ = os.Remove(filepath.Join(j.dir, name))
			}
		}
	}
	return nil
}

// Size returns the total bytes of live journal segments (snapshots
// excluded) — the journal_bytes gauge of /v1/stats.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sealedSize + j.activeSize
}

// Close syncs and closes the active segment. Further operations fail with
// ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.active == nil {
		return nil // a failed rotation already closed the segment
	}
	if !j.opts.NoSync {
		if err := j.active.Sync(); err != nil {
			j.active.Close()
			return fmt.Errorf("journal: close: %w", err)
		}
	}
	if err := j.active.Close(); err != nil {
		return fmt.Errorf("journal: close: %w", err)
	}
	return nil
}

// WriteFileAtomic durably replaces path with data: the bytes are written to
// a temporary file, fsynced, renamed over path, and the directory synced —
// so a crash leaves either the old content or the new, never a mix. The emsd
// durability layer uses it for checkpoint and result files.
func WriteFileAtomic(path string, data []byte) error {
	return writeFileAtomic(path, data, false)
}

func writeFileAtomic(path string, data []byte, noSync bool) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := firePoint(OpSync); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: sync: %w", err)
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: %w", err)
	}
	if !noSync {
		syncDir(filepath.Dir(path))
	}
	return nil
}

func segPath(dir string, idx uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.log", idx))
}

func snapPath(dir string, idx uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016d.bin", idx))
}

func fileSize(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// createSegment creates wal-<idx>.log with its magic header, fsyncs it and
// the directory, and returns it opened for append.
func createSegment(dir string, idx uint64, noSync bool) (*os.File, int64, error) {
	if err := firePoint(OpCreate); err != nil {
		return nil, 0, fmt.Errorf("journal: create segment: %w", err)
	}
	f, err := os.OpenFile(segPath(dir, idx), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	if _, err := f.WriteString(walMagic); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("journal: %w", err)
		}
		syncDir(dir)
	}
	return f, magicLen, nil
}

// truncateSegment cuts a torn segment back to its valid prefix.
func truncateSegment(path string, valid int64, noSync bool) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: truncate: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(valid); err != nil {
		return fmt.Errorf("journal: truncate: %w", err)
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("journal: truncate: %w", err)
		}
	}
	return nil
}

func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync() // advisory; not all filesystems support directory fsync
		d.Close()
	}
}

// replaySegment reads the committed records of one segment. It never fails:
// any malformed frame — short header, oversized length, short payload, bad
// checksum, or a bad segment magic — ends the replay at the longest valid
// prefix, reported via valid (the byte offset the segment should be
// truncated to) and torn.
func replaySegment(path string, maxRecord int) (records [][]byte, valid int64, torn bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, true
	}
	defer f.Close()
	r := bufio.NewReader(f)
	magic := make([]byte, magicLen)
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != walMagic {
		return nil, 0, true
	}
	valid = magicLen
	var hdr [frameHeaderLen]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return records, valid, !errors.Is(err, io.EOF)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if int64(n) > int64(maxRecord) {
			return records, valid, true
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return records, valid, true
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return records, valid, true
		}
		records = append(records, payload)
		valid += frameHeaderLen + int64(n)
	}
}

// readSnapshot validates and returns a snapshot payload; ok is false for any
// malformed file.
func readSnapshot(path string, maxRecord int) (data []byte, ok bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	magic := make([]byte, magicLen)
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != snapMagic {
		return nil, false
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, false
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if int64(n) > int64(maxRecord) {
		return nil, false
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, false
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, false
	}
	return payload, true
}
