package journal

import (
	"errors"
	"sync/atomic"
)

// Op names a journal operation a failpoint can intercept.
type Op string

const (
	// OpWrite fires before a record frame is written to the active segment.
	OpWrite Op = "write"
	// OpSync fires before an fsync — of the active segment after an append,
	// and of the temporary file inside WriteFileAtomic.
	OpSync Op = "sync"
	// OpCreate fires before a new segment file is created — at rotation,
	// compaction, and open. A full disk typically fails here first.
	OpCreate Op = "create"
)

// ErrShortWrite, returned by a failpoint for OpWrite, makes Append write
// only half of the frame bytes before failing — a deterministic torn tail,
// as left behind by a crash mid-write.
var ErrShortWrite = errors.New("journal: injected short write")

// failpointFn is the testing-only hook; see SetFailpoint.
var failpointFn atomic.Pointer[func(op Op) error]

// SetFailpoint installs a hook consulted before journal writes and syncs. A
// non-nil return fails the operation with that error; returning ErrShortWrite
// from OpWrite additionally leaves a torn half-written frame behind. It
// exists solely so tests can drive kill-and-restart recovery
// deterministically; production code must never install one. The returned
// function restores the previous hook; pass nil to clear. The hook may be
// called from multiple goroutines and must be safe for concurrent use.
func SetFailpoint(fn func(op Op) error) (restore func()) {
	var p *func(op Op) error
	if fn != nil {
		p = &fn
	}
	old := failpointFn.Swap(p)
	return func() { failpointFn.Store(old) }
}

// firePoint consults the installed failpoint, if any.
func firePoint(op Op) error {
	if p := failpointFn.Load(); p != nil {
		return (*p)(op)
	}
	return nil
}
