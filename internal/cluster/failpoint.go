package cluster

import (
	"sync/atomic"
	"time"
)

// PeerFault is what an installed failpoint injects into one peer HTTP
// exchange. Fields compose: Delay is applied first, then Err or Status
// short-circuits the exchange (Err wins). The zero value injects nothing.
type PeerFault struct {
	// Delay stalls the exchange before anything is sent — a slow peer. The
	// caller's context still applies while waiting.
	Delay time.Duration
	// Err fails the exchange as a transport error, surfaced as
	// *UnavailableError — an unreachable or timed-out peer.
	Err error
	// Status short-circuits the exchange with this HTTP status and Body
	// without touching the network; >= 500 surfaces as *UnavailableError,
	// mirroring a real response.
	Status int
	Body   []byte
}

// peerFailpointFn is the testing-only hook; see SetFailpoint.
var peerFailpointFn atomic.Pointer[func(node, method, path string) *PeerFault]

// SetFailpoint installs a hook consulted before every peer HTTP exchange
// (Client.Do). A non-nil *PeerFault is injected instead of (or before) the
// real exchange. It exists so the chaos harness can simulate peer timeouts,
// 503s, and flapping links deterministically; production code must never
// install one. The returned function restores the previous hook; pass nil
// to clear. The hook may be called from multiple goroutines and must be
// safe for concurrent use.
func SetFailpoint(fn func(node, method, path string) *PeerFault) (restore func()) {
	var p *func(node, method, path string) *PeerFault
	if fn != nil {
		p = &fn
	}
	old := peerFailpointFn.Swap(p)
	return func() { peerFailpointFn.Store(old) }
}

// firePeerPoint consults the installed failpoint, if any.
func firePeerPoint(node, method, path string) *PeerFault {
	if p := peerFailpointFn.Load(); p != nil {
		return (*p)(node, method, path)
	}
	return nil
}
