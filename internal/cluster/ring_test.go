package cluster

import (
	"fmt"
	"testing"
)

func threeNodeRing(t *testing.T) *Ring {
	t.Helper()
	r, err := New([]Node{
		{ID: "node-a", Addr: "http://a"},
		{ID: "node-b", Addr: "http://b"},
		{ID: "node-c", Addr: "http://c"},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRingPinnedPlacement pins placement for known keys on a known
// membership. Ring placement is a cluster-wide contract (every node
// computes ownership independently); if this fails, the hash construction
// changed and a mixed-version cluster would disagree about who owns what.
func TestRingPinnedPlacement(t *testing.T) {
	r := threeNodeRing(t)
	want := map[string][]string{
		"alpha":   {"node-c", "node-a", "node-b"},
		"bravo":   {"node-b", "node-a", "node-c"},
		"charlie": {"node-c", "node-a", "node-b"},
	}
	for key, order := range want {
		got := r.Replicas(key, 0)
		if len(got) != len(order) {
			t.Fatalf("Replicas(%q) returned %d nodes, want %d", key, len(got), len(order))
		}
		for i, n := range got {
			if n.ID != order[i] {
				t.Errorf("Replicas(%q)[%d] = %s, want %s", key, i, n.ID, order[i])
			}
		}
		if r.Owner(key).ID != order[0] {
			t.Errorf("Owner(%q) = %s, want %s", key, r.Owner(key).ID, order[0])
		}
	}
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	r1, r2 := threeNodeRing(t), threeNodeRing(t)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		o1, o2 := r1.Owner(key), r2.Owner(key)
		if o1.ID != o2.ID {
			t.Fatalf("two identical rings disagree on %q: %s vs %s", key, o1.ID, o2.ID)
		}
		counts[o1.ID]++
	}
	for _, n := range r1.Nodes() {
		if c := counts[n.ID]; c < keys/6 {
			t.Errorf("node %s owns only %d/%d keys; ring is badly unbalanced", n.ID, c, keys)
		}
	}
}

// TestRingConsistency: removing one node must only move the keys that node
// owned; every other key keeps its owner. This is the property that makes
// the hash ring worth having over mod-N.
func TestRingConsistency(t *testing.T) {
	full := threeNodeRing(t)
	reduced, err := New([]Node{{ID: "node-a"}, {ID: "node-b"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Owner(key).ID
		after := reduced.Owner(key).ID
		if before == "node-c" {
			moved++
			continue // had to move
		}
		if before != after {
			t.Fatalf("key %q moved %s → %s although its owner survived", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("test is vacuous: no sampled key was owned by the removed node")
	}
}

func TestRingReplicasDistinctAndBounded(t *testing.T) {
	r := threeNodeRing(t)
	for _, n := range []int{1, 2, 3, 99, 0, -1} {
		reps := r.Replicas("some-key", n)
		wantLen := n
		if n <= 0 || n > 3 {
			wantLen = 3
		}
		if len(reps) != wantLen {
			t.Fatalf("Replicas(n=%d) returned %d nodes, want %d", n, len(reps), wantLen)
		}
		seen := map[string]bool{}
		for _, node := range reps {
			if seen[node.ID] {
				t.Fatalf("Replicas(n=%d) repeats node %s", n, node.ID)
			}
			seen[node.ID] = true
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := New([]Node{{ID: ""}}, 0); err == nil {
		t.Fatal("empty node ID accepted")
	}
	if _, err := New([]Node{{ID: "a"}, {ID: "a"}}, 0); err == nil {
		t.Fatal("duplicate node ID accepted")
	}
}

func TestJobIDQualification(t *testing.T) {
	q := QualifyJobID("job-000007", "node-b")
	if q != "job-000007@node-b" {
		t.Fatalf("QualifyJobID = %q", q)
	}
	id, node := SplitJobID(q)
	if id != "job-000007" || node != "node-b" {
		t.Fatalf("SplitJobID(%q) = %q, %q", q, id, node)
	}
	id, node = SplitJobID("job-000001")
	if id != "job-000001" || node != "" {
		t.Fatalf("SplitJobID unqualified = %q, %q", id, node)
	}
}
