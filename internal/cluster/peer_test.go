package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/ems"
)

// stubNode fakes just enough of the emsd API for the client: accept a job,
// report it done after a couple of polls, serve a canned result.
func stubNode(t *testing.T, res *ems.Result) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var polls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(ForwardedHeader) == "" {
			t.Error("peer client did not mark its submission as forwarded")
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": "job-000042", "status": "queued"})
	})
	mux.HandleFunc("GET /v1/jobs/job-000042", func(w http.ResponseWriter, r *http.Request) {
		status := "running"
		if polls.Add(1) >= 2 {
			status = "done"
		}
		json.NewEncoder(w).Encode(map[string]string{"id": "job-000042", "status": status})
	})
	mux.HandleFunc("GET /v1/jobs/job-000042/result", func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Error(err)
		}
		w.Write(buf.Bytes())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &polls
}

func TestClientRunJob(t *testing.T) {
	want := &ems.Result{
		Names1: []string{"A", "B"}, Names2: []string{"1", "2"},
		Sim: []float64{0.25, 0.5, 0.75, 1}, Rounds: 3, Evaluations: 12,
	}
	srv, polls := stubNode(t, want)
	c := NewClient(Node{ID: "n1", Addr: srv.URL}, time.Second)
	if err := c.Healthy(context.Background()); err != nil {
		t.Fatalf("Healthy: %v", err)
	}
	got, id, err := c.RunJob(context.Background(), []byte(`{"log1":{},"log2":{}}`), time.Millisecond)
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	if id != "job-000042" {
		t.Fatalf("job id %q", id)
	}
	if polls.Load() < 2 {
		t.Fatalf("result served before the job was done (%d polls)", polls.Load())
	}
	var a, b bytes.Buffer
	if err := want.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("result did not survive the wire byte-for-byte:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestClientErrorClassification(t *testing.T) {
	// Dead listener → unavailable.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	c := NewClient(Node{ID: "gone", Addr: deadURL}, 200*time.Millisecond)
	if _, err := c.Submit(context.Background(), []byte(`{}`)); !IsUnavailable(err) {
		t.Fatalf("connection refused not classified unavailable: %v", err)
	}

	// 400 → terminal remote error, not unavailable.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "log1: no traces"})
	}))
	defer bad.Close()
	c = NewClient(Node{ID: "picky", Addr: bad.URL}, time.Second)
	_, err := c.Submit(context.Background(), []byte(`{}`))
	if IsUnavailable(err) {
		t.Fatalf("400 misclassified as unavailable: %v", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != http.StatusBadRequest || re.Msg != "log1: no traces" {
		t.Fatalf("remote error not surfaced: %v", err)
	}

	// 503 (shedding / shutting down) → unavailable: retry elsewhere.
	full := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"error": "job queue is full"})
	}))
	defer full.Close()
	c = NewClient(Node{ID: "full", Addr: full.URL}, time.Second)
	if _, err := c.Submit(context.Background(), []byte(`{}`)); !IsUnavailable(err) {
		t.Fatalf("503 not classified unavailable: %v", err)
	}
}

func TestHealthTracking(t *testing.T) {
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	}))
	defer alive.Close()
	deadSrv := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadSrv.URL
	deadSrv.Close()

	var transitions atomic.Int64
	h := NewHealth([]*Client{
		NewClient(Node{ID: "up", Addr: alive.URL}, time.Second),
		NewClient(Node{ID: "down", Addr: deadURL}, 200*time.Millisecond),
	}, func(id string, up bool) { transitions.Add(1) })

	if !h.Up("up") || !h.Up("down") || !h.Up("unknown") {
		t.Fatal("peers must start optimistic")
	}
	h.Probe(context.Background())
	if !h.Up("up") {
		t.Fatal("live peer marked down")
	}
	if h.Up("down") {
		t.Fatal("dead peer still up after probe")
	}
	if h.UpCount() != 1 {
		t.Fatalf("UpCount = %d, want 1", h.UpCount())
	}
	if transitions.Load() != 1 {
		t.Fatalf("expected exactly one up→down transition, saw %d", transitions.Load())
	}
	// A later success flips it back.
	h.ReportSuccess("down")
	if !h.Up("down") {
		t.Fatal("recovered peer still down")
	}
	snap := h.Snapshot()
	if len(snap) != 2 || snap[0].ID != "down" || snap[1].ID != "up" {
		t.Fatalf("snapshot wrong: %+v", snap)
	}
}
