package cluster

import (
	"context"
	"fmt"
	"sync"

	"repro/ems"
)

// Pair is one unit of batch work: a named log pair whose content-addressed
// job key decides its ring placement. The coordinator never looks at the
// logs themselves — the Runner carries them — so placement and execution
// stay decoupled.
type Pair struct {
	Name string
	Key  string
}

// Runner executes one pair on one node and returns its result. The server
// injects it: node == self runs through the local job queue (cache,
// coalescing and all), a remote node goes through the peer client. An
// *UnavailableError return means the node could not take or finish the
// work and the pair should fail over; any other error is terminal for the
// pair.
type Runner func(ctx context.Context, node Node, pair Pair) (*ems.Result, error)

// PairResult is the outcome of one coordinated pair.
type PairResult struct {
	Name string
	// Node is the ID of the node that produced the terminal outcome.
	Node string
	// Attempts counts execution attempts across replicas (1 = no failover).
	Attempts int
	Result   *ems.Result
	Err      error
}

// Coordinator fans pairs out across the ring: each pair is offered to its
// key's replicas in ring order, with a bounded number of in-flight pairs
// per node, failing over to the next replica when a node is unavailable.
type Coordinator struct {
	Ring *Ring
	// Health, when set, lets placement skip known-down nodes without paying
	// a connection timeout. Down nodes are only skipped while another
	// replica remains; the last candidate is always tried, so a fully
	// "down" view (e.g. a stale tracker) degrades to attempts, not to
	// instant failure.
	Health *Health
	Run    Runner
	// NodeInflight bounds concurrently executing pairs per node (<= 0 means
	// DefaultNodeInflight). It is the coordinator's backpressure: a 100×100
	// grid must not dump 10000 submissions onto a 3-node cluster at once.
	NodeInflight int
	// OnFailover observes each abandoned attempt (after Run returned
	// unavailable, or a down node was skipped) — the failover metric hook.
	OnFailover func(node Node, pair Pair, err error)
	// OnDone observes each pair's terminal outcome as it happens, in
	// completion order — the progress hook. Called concurrently.
	OnDone func(i int, pr PairResult)
}

// DefaultNodeInflight is the per-node in-flight bound used when the
// coordinator's NodeInflight is unset.
const DefaultNodeInflight = 4

// errSkippedDown marks a replica skipped on health information alone.
var errSkippedDown = fmt.Errorf("cluster: node marked down, skipped")

// Execute runs every pair to a terminal outcome and returns the results in
// input order. It blocks until all pairs are done or ctx is cancelled;
// cancelled pairs report ctx's cause. Execute never fails as a whole — a
// pair that exhausts every replica carries the last error.
func (c *Coordinator) Execute(ctx context.Context, pairs []Pair) []PairResult {
	inflight := c.NodeInflight
	if inflight <= 0 {
		inflight = DefaultNodeInflight
	}
	// One semaphore per node; replicas order is per-pair, so a pair blocked
	// on a busy owner does not stop other pairs from running elsewhere.
	sems := make(map[string]chan struct{}, c.Ring.Len())
	for _, n := range c.Ring.Nodes() {
		sems[n.ID] = make(chan struct{}, inflight)
	}
	out := make([]PairResult, len(pairs))
	var wg sync.WaitGroup
	for i := range pairs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = c.executePair(ctx, pairs[i], sems)
			if c.OnDone != nil {
				c.OnDone(i, out[i])
			}
		}(i)
	}
	wg.Wait()
	return out
}

// executePair walks one pair down its replica list.
func (c *Coordinator) executePair(ctx context.Context, pair Pair, sems map[string]chan struct{}) PairResult {
	pr := PairResult{Name: pair.Name}
	replicas := PreferUnsaturated(c.Ring.Replicas(pair.Key, 0), c.Health)
	var lastErr error
	for ri, node := range replicas {
		if err := ctx.Err(); err != nil {
			pr.Err = fmt.Errorf("cluster: pair %q abandoned: %w", pair.Name, context.Cause(ctx))
			return pr
		}
		last := ri == len(replicas)-1
		if !last && c.Health != nil && !c.Health.Up(node.ID) {
			if c.OnFailover != nil {
				c.OnFailover(node, pair, errSkippedDown)
			}
			lastErr = &UnavailableError{Node: node.ID, Op: "placement", Err: errSkippedDown}
			continue
		}
		sem := sems[node.ID]
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			pr.Err = fmt.Errorf("cluster: pair %q abandoned: %w", pair.Name, context.Cause(ctx))
			return pr
		}
		res, err := c.Run(ctx, node, pair)
		<-sem
		pr.Attempts++
		if err != nil && IsUnavailable(err) && ctx.Err() == nil {
			if c.Health != nil {
				c.Health.ReportFailure(node.ID, err)
			}
			if c.OnFailover != nil {
				c.OnFailover(node, pair, err)
			}
			lastErr = err
			continue
		}
		pr.Node, pr.Result, pr.Err = node.ID, res, err
		return pr
	}
	pr.Err = fmt.Errorf("cluster: pair %q failed on every replica: %w", pair.Name, lastErr)
	return pr
}

// PreferUnsaturated stably partitions a replica list so nodes that declared
// themselves out of memory budget sink to the back (ring order preserved
// within each class). Saturated nodes are demoted, never dropped: they
// still shed with a Retry-After if everyone is overloaded, which beats not
// trying at all.
func PreferUnsaturated(replicas []Node, h *Health) []Node {
	if h == nil || len(replicas) < 2 {
		return replicas
	}
	ordered := make([]Node, 0, len(replicas))
	var saturated []Node
	for _, n := range replicas {
		if h.Saturated(n.ID) {
			saturated = append(saturated, n)
			continue
		}
		ordered = append(ordered, n)
	}
	return append(ordered, saturated...)
}
