package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/ems"
	"repro/internal/obs"
)

// ForwardedHeader marks a request that already crossed one node boundary.
// A node receiving it always executes locally — never re-forwards — so a
// stale or disagreeing ring cannot bounce a job around the cluster.
const ForwardedHeader = "X-Emsd-Forwarded"

// QualifyJobID tags a job ID with the node it lives on. A node that
// forwards a submission returns the owner's job ID in this qualified form,
// so later GET/DELETE calls on any node can be routed back to the owner.
func QualifyJobID(id, nodeID string) string { return id + "@" + nodeID }

// SplitJobID undoes QualifyJobID. nodeID is empty for an unqualified
// (local) ID.
func SplitJobID(qualified string) (id, nodeID string) {
	if i := strings.LastIndexByte(qualified, '@'); i >= 0 {
		return qualified[:i], qualified[i+1:]
	}
	return qualified, ""
}

// UnavailableError reports that a peer could not be reached or could not
// accept work (transport failure, 5xx, or an explicit shedding/shutdown
// 503). It is the coordinator's failover trigger: unlike a 4xx — which
// means the job itself is bad and would fail identically anywhere — an
// unavailable peer justifies retrying on the next ring replica.
type UnavailableError struct {
	Node string // node ID
	Op   string // what was being attempted
	Err  error
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("cluster: peer %s unavailable during %s: %v", e.Node, e.Op, e.Err)
}

func (e *UnavailableError) Unwrap() error { return e.Err }

// IsUnavailable reports whether err means a peer was unreachable (and the
// work is worth retrying elsewhere).
func IsUnavailable(err error) bool {
	var ue *UnavailableError
	return errors.As(err, &ue)
}

// RemoteError is a terminal error reported by a peer: the peer was healthy
// and answered, but the job was rejected or failed there. Retrying on
// another node would reproduce it, so the coordinator does not fail over.
type RemoteError struct {
	Node string
	Code int // HTTP status, 0 when the job failed after acceptance
	Msg  string
}

func (e *RemoteError) Error() string {
	if e.Code != 0 {
		return fmt.Sprintf("cluster: peer %s rejected the job (HTTP %d): %s", e.Node, e.Code, e.Msg)
	}
	return fmt.Sprintf("cluster: job failed on peer %s: %s", e.Node, e.Msg)
}

// JobRef is the slice of a peer's job view the client needs: identity and
// lifecycle. Extra fields in the peer's response are ignored, so client and
// peer versions may skew.
type JobRef struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// Client talks the emsd HTTP API to one peer node.
type Client struct {
	node Node
	hc   *http.Client

	// RetryBackoff is the pause Forward takes before its single retry of
	// an unavailable peer. 0 means 50ms; negative disables the retry. Set
	// before sharing the client.
	RetryBackoff time.Duration
}

// NewClient returns a client for node with a per-request timeout (<= 0
// means 15s). The timeout bounds one HTTP exchange, not a whole job: long
// computations are polled, never held open.
func NewClient(node Node, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 15 * time.Second
	}
	return &Client{node: node, hc: &http.Client{Timeout: timeout}}
}

// Node returns the peer this client dials.
func (c *Client) Node() Node { return c.node }

// Do performs one HTTP exchange with the peer and returns the status code
// and full response body. Transport failures and 5xx responses come back as
// *UnavailableError; any other status is returned for the caller to
// interpret. The forwarded marker is always set: everything a Client sends
// has already crossed a node boundary. When ctx carries an obs.Trace, the
// exchange is recorded as a "peer:<node>" hop span and the trace ID plus
// that span's ID travel in the X-Emsd-Trace header, so spans the peer
// records parent under this hop.
func (c *Client) Do(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	var hop *obs.Span
	if tr := obs.TraceFrom(ctx); tr != nil {
		hop = tr.StartSpan("peer:" + c.node.ID)
		hop.SetAttr("op", method+" "+path)
		defer hop.End()
	}
	if pf := firePeerPoint(c.node.ID, method, path); pf != nil {
		if code, b, err, injected := c.applyFault(ctx, method, path, pf); injected {
			return code, b, err
		}
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.node.Addr+path, rd)
	if err != nil {
		return 0, nil, fmt.Errorf("cluster: build request: %w", err)
	}
	req.Header.Set(ForwardedHeader, "1")
	if hop != nil {
		tr := hop.Trace()
		req.Header.Set(obs.TraceHeader, obs.FormatTraceHeader(tr.ID(), hop.ID()))
		// Also carry the bare trace ID as the request ID so the peer's log
		// lines correlate even through layers that only know X-Request-ID.
		req.Header.Set(obs.RequestIDHeader, tr.ID())
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, &UnavailableError{Node: c.node.ID, Op: method + " " + path, Err: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, &UnavailableError{Node: c.node.ID, Op: method + " " + path, Err: err}
	}
	if resp.StatusCode >= 500 || resp.StatusCode == http.StatusServiceUnavailable {
		return resp.StatusCode, b, &UnavailableError{
			Node: c.node.ID, Op: method + " " + path,
			Err: fmt.Errorf("HTTP %d: %s", resp.StatusCode, errorMessage(b)),
		}
	}
	return resp.StatusCode, b, nil
}

// applyFault realizes an injected PeerFault: the delay always applies;
// injected reports whether the fault also decided the exchange's outcome
// (a delay-only fault lets the real exchange proceed afterwards).
func (c *Client) applyFault(ctx context.Context, method, path string, pf *PeerFault) (int, []byte, error, bool) {
	op := method + " " + path
	if pf.Delay > 0 {
		t := time.NewTimer(pf.Delay)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return 0, nil, &UnavailableError{Node: c.node.ID, Op: op, Err: ctx.Err()}, true
		case <-t.C:
		}
	}
	if pf.Err != nil {
		return 0, nil, &UnavailableError{Node: c.node.ID, Op: op, Err: pf.Err}, true
	}
	if pf.Status != 0 {
		if pf.Status >= 500 || pf.Status == http.StatusServiceUnavailable {
			return pf.Status, pf.Body, &UnavailableError{
				Node: c.node.ID, Op: op,
				Err: fmt.Errorf("HTTP %d: %s", pf.Status, errorMessage(pf.Body)),
			}, true
		}
		return pf.Status, pf.Body, nil, true
	}
	return 0, nil, nil, false
}

// errorMessage extracts the "error" field of an emsd error body, falling
// back to the raw (truncated) body.
func errorMessage(body []byte) string {
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		return eb.Error
	}
	s := string(body)
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return strings.TrimSpace(s)
}

// NodeLoad is the slice of a peer's /healthz body that matters for
// load-aware placement: the memory governor's state and committed budget
// fraction. Peers running without a budget report {"ok", 0}.
type NodeLoad struct {
	Governor string  `json:"governor"`
	Load     float64 `json:"load"`
}

// Saturated reports whether the peer declared itself out of memory budget.
func (l NodeLoad) Saturated() bool { return l.Governor == "saturated" }

// Probe checks the peer's liveness endpoint and returns its load signal.
// A missing governor field (older peer) decodes to the zero NodeLoad, which
// never reads as saturated.
func (c *Client) Probe(ctx context.Context) (NodeLoad, error) {
	var nl NodeLoad
	code, body, err := c.Do(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return nl, err
	}
	if code != http.StatusOK {
		return nl, &UnavailableError{Node: c.node.ID, Op: "GET /healthz",
			Err: fmt.Errorf("HTTP %d: %s", code, errorMessage(body))}
	}
	_ = json.Unmarshal(body, &nl) // best effort: liveness decided above
	return nl, nil
}

// Healthy probes the peer's liveness endpoint.
func (c *Client) Healthy(ctx context.Context) error {
	_, err := c.Probe(ctx)
	return err
}

// Forward posts a serialized job submission to the peer, retrying once
// after a short pause when the attempt fails with *UnavailableError. The
// retry is safe to send blind: emsd submissions are content-addressed, so
// a duplicate that raced a slow-but-successful first attempt coalesces
// onto the same job instead of computing twice. One retry is the bound —
// a peer that fails twice in a row is genuinely down, and the caller's
// ring failover (plus the health tracker the failure feeds) is the right
// next move, not more waiting here.
func (c *Client) Forward(ctx context.Context, body []byte) (int, []byte, error) {
	code, resp, err := c.Do(ctx, http.MethodPost, "/v1/jobs", body)
	if err == nil || !IsUnavailable(err) || c.RetryBackoff < 0 {
		return code, resp, err
	}
	backoff := c.RetryBackoff
	if backoff == 0 {
		backoff = 50 * time.Millisecond
	}
	t := time.NewTimer(backoff)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return code, resp, err
	case <-t.C:
	}
	return c.Do(ctx, http.MethodPost, "/v1/jobs", body)
}

// Submit posts a job body (a serialized emsd JobRequest) to the peer and
// returns its job handle, retrying once via Forward if the peer is
// unavailable. A 4xx answer is a *RemoteError: the job is bad, not the
// peer.
func (c *Client) Submit(ctx context.Context, body []byte) (*JobRef, error) {
	code, resp, err := c.Forward(ctx, body)
	if err != nil {
		return nil, err
	}
	if code != http.StatusAccepted {
		return nil, &RemoteError{Node: c.node.ID, Code: code, Msg: errorMessage(resp)}
	}
	var ref JobRef
	if err := json.Unmarshal(resp, &ref); err != nil || ref.ID == "" {
		return nil, &UnavailableError{Node: c.node.ID, Op: "POST /v1/jobs",
			Err: fmt.Errorf("unparseable accept body: %q", resp)}
	}
	return &ref, nil
}

// Job fetches the peer's view of one of its jobs.
func (c *Client) Job(ctx context.Context, id string) (*JobRef, error) {
	code, resp, err := c.Do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, &RemoteError{Node: c.node.ID, Code: code, Msg: errorMessage(resp)}
	}
	var ref JobRef
	if err := json.Unmarshal(resp, &ref); err != nil || ref.ID == "" {
		return nil, &UnavailableError{Node: c.node.ID, Op: "GET /v1/jobs/" + id,
			Err: fmt.Errorf("unparseable job body: %q", resp)}
	}
	return &ref, nil
}

// Result fetches and decodes a finished job's result.
func (c *Client) Result(ctx context.Context, id string) (*ems.Result, error) {
	code, resp, err := c.Do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, &RemoteError{Node: c.node.ID, Code: code, Msg: errorMessage(resp)}
	}
	res, err := ems.ReadResultJSON(bytes.NewReader(resp))
	if err != nil {
		return nil, &UnavailableError{Node: c.node.ID, Op: "GET /v1/jobs/" + id + "/result", Err: err}
	}
	return res, nil
}

// Cancel asks the peer to abort one of its jobs (best effort).
func (c *Client) Cancel(ctx context.Context, id string) error {
	_, _, err := c.Do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil)
	return err
}

// RunJob executes one job to completion on the peer: submit, poll every
// pollEvery (<= 0 means 100ms) until terminal, then fetch the result. The
// returned job ID identifies the job on the peer even when an error is
// returned (empty if submission itself failed). Cancelling ctx abandons the
// poll and best-effort-cancels the remote job so the peer does not keep
// computing for a coordinator that is gone.
func (c *Client) RunJob(ctx context.Context, body []byte, pollEvery time.Duration) (*ems.Result, string, error) {
	if pollEvery <= 0 {
		pollEvery = 100 * time.Millisecond
	}
	ref, err := c.Submit(ctx, body)
	if err != nil {
		return nil, "", err
	}
	id := ref.ID
	tick := time.NewTicker(pollEvery)
	defer tick.Stop()
	for {
		switch ref.Status {
		case "done":
			res, err := c.Result(ctx, id)
			return res, id, err
		case "failed":
			return nil, id, &RemoteError{Node: c.node.ID, Msg: ref.Error}
		case "cancelled":
			return nil, id, &RemoteError{Node: c.node.ID, Msg: "cancelled on peer"}
		}
		select {
		case <-ctx.Done():
			cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = c.Cancel(cctx, id)
			cancel()
			return nil, id, fmt.Errorf("cluster: job %s on peer %s abandoned: %w", id, c.node.ID, context.Cause(ctx))
		case <-tick.C:
		}
		if ref, err = c.Job(ctx, id); err != nil {
			return nil, id, err
		}
	}
}
