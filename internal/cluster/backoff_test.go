package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyNode serves /healthz and POST /v1/jobs, failing every request with
// 503 while broken is set and counting the hits per path.
func flakyNode(t *testing.T) (srv *httptest.Server, broken *atomic.Bool, health, submits *atomic.Int64) {
	t.Helper()
	broken = new(atomic.Bool)
	health, submits = new(atomic.Int64), new(atomic.Int64)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		health.Add(1)
		if broken.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		submits.Add(1)
		if broken.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": "job-000007", "status": "queued"})
	})
	srv = httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, broken, health, submits
}

func TestProbeBacksOffDownPeers(t *testing.T) {
	srv, broken, hits, _ := flakyNode(t)
	broken.Store(true)
	h := NewHealth([]*Client{NewClient(Node{ID: "p1", Addr: srv.URL}, time.Second)}, nil)

	// Deterministic harness: a hand-cranked clock, jitter pinned to the
	// midpoint (factor exactly 1.0), and the base interval Run would set.
	now := time.Unix(1000, 0)
	h.mu.Lock()
	h.interval = 2 * time.Second
	h.now = func() time.Time { return now }
	h.jitter = func() float64 { return 0.5 }
	h.mu.Unlock()

	probe := func() { h.Probe(context.Background()) }

	probe() // first failure: down, next probe due at +2s
	if h.Up("p1") || hits.Load() != 1 {
		t.Fatalf("after first probe: up=%t hits=%d", h.Up("p1"), hits.Load())
	}
	now = now.Add(1 * time.Second)
	probe() // not due yet: the down peer must be skipped
	if hits.Load() != 1 {
		t.Fatalf("down peer probed before its backoff expired (hits=%d)", hits.Load())
	}
	now = now.Add(1 * time.Second)
	probe() // due at exactly +2s; second failure doubles the delay to 4s
	if hits.Load() != 2 {
		t.Fatalf("down peer not probed when due (hits=%d)", hits.Load())
	}
	now = now.Add(3 * time.Second)
	probe()
	if hits.Load() != 2 {
		t.Fatalf("backoff did not double after the second failure (hits=%d)", hits.Load())
	}
	now = now.Add(1 * time.Second)
	broken.Store(false)
	probe() // due again at +4s; the peer has recovered
	if hits.Load() != 3 || !h.Up("p1") {
		t.Fatalf("recovery probe: hits=%d up=%t", hits.Load(), h.Up("p1"))
	}
	// An up peer is probed on every tick again — no lingering backoff.
	probe()
	probe()
	if hits.Load() != 5 {
		t.Fatalf("recovered peer still throttled (hits=%d)", hits.Load())
	}
}

func TestBackoffCapAndJitterBounds(t *testing.T) {
	h := NewHealth(nil, nil)
	h.mu.Lock()
	h.interval = 2 * time.Second
	h.mu.Unlock()

	set := func(j float64) {
		h.mu.Lock()
		h.jitter = func() float64 { return j }
		h.mu.Unlock()
	}
	set(0.5)
	for want, failures := 2*time.Second, 1; failures <= 4; failures++ {
		if got := h.backoff(failures); got != want {
			t.Fatalf("backoff(%d) = %v, want %v", failures, got, want)
		}
		want *= 2
	}
	if got := h.backoff(30); got != maxProbeBackoff {
		t.Fatalf("backoff(30) = %v, want cap %v", got, maxProbeBackoff)
	}
	set(0)
	if got := h.backoff(1); got != 1500*time.Millisecond {
		t.Fatalf("low-jitter backoff = %v, want 1.5s", got)
	}
	set(0.999)
	if got := h.backoff(1); got < 2*time.Second || got >= 2500*time.Millisecond {
		t.Fatalf("high-jitter backoff = %v, want in [2s, 2.5s)", got)
	}
}

func TestForwardRetriesOnceOnUnavailable(t *testing.T) {
	srv, broken, _, submits := flakyNode(t)

	// A peer that recovers between the two attempts: the retry lands.
	broken.Store(true)
	c := NewClient(Node{ID: "p1", Addr: srv.URL}, time.Second)
	c.RetryBackoff = time.Millisecond
	done := make(chan struct{})
	go func() {
		// Flip the peer healthy while Forward sits in its backoff pause.
		for submits.Load() == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		broken.Store(false)
		close(done)
	}()
	code, _, err := c.Forward(context.Background(), []byte(`{}`))
	<-done
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("Forward after recovery: code=%d err=%v", code, err)
	}
	if submits.Load() != 2 {
		t.Fatalf("expected exactly one retry, saw %d submissions", submits.Load())
	}

	// A peer that stays down: exactly one retry, then the error surfaces.
	broken.Store(true)
	submits.Store(0)
	if _, _, err := c.Forward(context.Background(), []byte(`{}`)); !IsUnavailable(err) {
		t.Fatalf("persistent 503 not surfaced as unavailable: %v", err)
	}
	if submits.Load() != 2 {
		t.Fatalf("retry not bounded to one: %d submissions", submits.Load())
	}

	// A negative backoff disables the retry entirely.
	submits.Store(0)
	c.RetryBackoff = -1
	if _, _, err := c.Forward(context.Background(), []byte(`{}`)); !IsUnavailable(err) {
		t.Fatalf("want unavailable, got %v", err)
	}
	if submits.Load() != 1 {
		t.Fatalf("negative RetryBackoff still retried: %d submissions", submits.Load())
	}

	// A cancelled context aborts the backoff pause instead of sleeping it
	// out: with an hour-long pause the call must still return promptly,
	// carrying the first attempt's error and never reaching a second try.
	submits.Store(0)
	c.RetryBackoff = time.Hour
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, _, err := c.Forward(ctx, []byte(`{}`)); !IsUnavailable(err) {
		t.Fatalf("want first attempt's unavailable error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled context did not abort the pause (took %v)", elapsed)
	}
	if submits.Load() > 1 {
		t.Fatalf("cancelled context still retried: %d submissions", submits.Load())
	}
}
