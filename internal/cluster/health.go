package cluster

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// PeerStatus is one peer's health as the local node sees it.
type PeerStatus struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	Up   bool   `json:"up"`
	// Failures counts consecutive failed probes/requests since the last
	// success.
	Failures int    `json:"failures,omitempty"`
	LastErr  string `json:"last_error,omitempty"`
	// Governor and Load mirror the peer's last successfully probed memory
	// pressure (see NodeLoad); empty/zero before the first probe.
	Governor string  `json:"governor,omitempty"`
	Load     float64 `json:"load,omitempty"`
}

// Health tracks peer liveness from two signals: a background prober hitting
// each peer's /healthz, and the request paths reporting their own successes
// and failures. A peer is down after one failure and up again after one
// success — cheap failover beats optimistic retries against a dead node,
// and the prober flips it back once it recovers.
//
// Down peers are probed on an exponential backoff with jitter rather than
// every tick: each consecutive failure doubles the delay until the next
// probe (capped at maxProbeBackoff), and the jitter spreads the probes of
// many nodes recovering from the same outage so they do not stampede the
// peer the moment it comes back. Up peers are probed every interval.
type Health struct {
	mu    sync.Mutex
	peers map[string]*peerHealth
	// onChange, when set, observes up/down transitions (e.g. to drive a
	// per-peer gauge). Called outside the lock. Set before sharing.
	onChange func(id string, up bool)
	// interval is the base probe period backoff multiplies; Run sets it.
	interval time.Duration
	// now and jitter are injectable for tests: now is the clock, jitter
	// returns a uniform [0,1) draw.
	now    func() time.Time
	jitter func() float64
}

type peerHealth struct {
	client   *Client
	up       bool
	failures int
	lastErr  string
	// load is the peer's self-reported memory pressure from its last
	// successful probe; the zero value (never saturated) until then.
	load NodeLoad
	// nextProbe is when a down peer is due for its next probe; the zero
	// time (always for up peers) means due immediately.
	nextProbe time.Time
}

// maxProbeBackoff caps the delay between probes of a down peer: outages
// longer than this are re-checked at a steady (still jittered) pace.
const maxProbeBackoff = 30 * time.Second

// NewHealth tracks the given peer clients, all initially up (a cold start
// assumes the best; the first probe or request corrects it).
func NewHealth(clients []*Client, onChange func(id string, up bool)) *Health {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	var rngMu sync.Mutex
	h := &Health{
		peers:    make(map[string]*peerHealth, len(clients)),
		onChange: onChange,
		now:      time.Now,
		jitter: func() float64 {
			rngMu.Lock()
			defer rngMu.Unlock()
			return rng.Float64()
		},
	}
	for _, c := range clients {
		h.peers[c.Node().ID] = &peerHealth{client: c, up: true}
	}
	return h
}

// Up reports whether a peer is believed reachable. Unknown IDs (including
// the local node) are up: the tracker only ever vetoes known-dead peers.
func (h *Health) Up(id string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[id]
	return !ok || p.up
}

// UpCount returns how many tracked peers are currently believed up.
func (h *Health) UpCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, p := range h.peers {
		if p.up {
			n++
		}
	}
	return n
}

// ReportSuccess records a successful exchange with a peer.
func (h *Health) ReportSuccess(id string) { h.report(id, nil) }

// ReportLoad folds in a peer's self-reported memory pressure (from a probe
// or any response that carried it).
func (h *Health) ReportLoad(id string, load NodeLoad) {
	h.mu.Lock()
	if p, ok := h.peers[id]; ok {
		p.load = load
	}
	h.mu.Unlock()
}

// Saturated reports whether a peer declared itself out of memory budget at
// its last probe. Unknown IDs (including the local node) are not saturated —
// like Up, the tracker only ever vetoes peers it has evidence against.
func (h *Health) Saturated(id string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[id]
	return ok && p.load.Saturated()
}

// ReportFailure records a failed exchange with a peer; the request paths
// call it so a dead node is avoided immediately, not only after the next
// probe.
func (h *Health) ReportFailure(id string, err error) { h.report(id, err) }

func (h *Health) report(id string, err error) {
	h.mu.Lock()
	p, ok := h.peers[id]
	if !ok {
		h.mu.Unlock()
		return
	}
	was := p.up
	if err == nil {
		p.up, p.failures, p.lastErr = true, 0, ""
		p.nextProbe = time.Time{}
	} else {
		p.up = false
		p.failures++
		p.lastErr = err.Error()
		p.nextProbe = h.now().Add(h.backoff(p.failures))
	}
	now := p.up
	onChange := h.onChange
	h.mu.Unlock()
	if onChange != nil && was != now {
		onChange(id, now)
	}
}

// backoff returns the jittered delay until the next probe of a peer with
// the given consecutive-failure count: interval << (failures-1), capped at
// maxProbeBackoff, then scaled by a uniform factor in [0.75, 1.25). Callers
// hold h.mu.
func (h *Health) backoff(failures int) time.Duration {
	base := h.interval
	if base <= 0 {
		base = 2 * time.Second
	}
	delay := base
	for i := 1; i < failures && delay < maxProbeBackoff; i++ {
		delay *= 2
	}
	if delay > maxProbeBackoff {
		delay = maxProbeBackoff
	}
	return time.Duration(float64(delay) * (0.75 + 0.5*h.jitter()))
}

// Snapshot returns every peer's status, sorted by ID.
func (h *Health) Snapshot() []PeerStatus {
	h.mu.Lock()
	out := make([]PeerStatus, 0, len(h.peers))
	for id, p := range h.peers {
		out = append(out, PeerStatus{
			ID: id, Addr: p.client.Node().Addr, Up: p.up,
			Failures: p.failures, LastErr: p.lastErr,
			Governor: p.load.Governor, Load: p.load.Load,
		})
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Probe checks every due peer once, concurrently, and folds the outcomes
// in. Up peers are always due; down peers only once their backoff expires.
func (h *Health) Probe(ctx context.Context) {
	h.mu.Lock()
	now := h.now()
	clients := make([]*Client, 0, len(h.peers))
	for _, p := range h.peers {
		if !p.up && now.Before(p.nextProbe) {
			continue
		}
		clients = append(clients, p.client)
	}
	h.mu.Unlock()
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			load, err := c.Probe(ctx)
			if err == nil {
				h.ReportLoad(c.Node().ID, load)
			}
			h.report(c.Node().ID, err)
		}(c)
	}
	wg.Wait()
}

// Run probes every peer on the interval (<= 0 means 2s) until ctx is
// cancelled. Start it on its own goroutine.
func (h *Health) Run(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = 2 * time.Second
	}
	h.mu.Lock()
	h.interval = every
	h.mu.Unlock()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			h.Probe(ctx)
		}
	}
}
