// Package cluster turns emsd into a peer-to-peer cluster: a consistent-hash
// ring places content-addressed job keys on nodes (so the dedup/coalescing
// result cache shards naturally and two nodes never duplicate the same
// job), an HTTP peer client with health probing talks to the owners, and a
// batch coordinator fans an N×M grid of match pairs out across the ring
// with bounded per-node in-flight limits, retrying a pair on the next ring
// replica when its node dies.
//
// Only placement is distributed: every pair is still computed by the
// single-node ems engine on exactly one machine, so results stay
// bit-identical to a local ems.MatchAll.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// Node identifies one cluster member: a stable ID (the ring hashes IDs, so
// every node must be configured with the same ID set) and the base URL
// peers dial it on. Addr is empty for the local node in its own ring.
type Node struct {
	ID   string `json:"id"`
	Addr string `json:"addr,omitempty"`
}

// DefaultVNodes is the virtual-node count per member: enough points that a
// 3-node ring splits keys within a few percent of evenly, cheap enough that
// ring construction stays trivial.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring over a set of nodes. Placement
// depends only on node IDs and the key bytes — never on addresses, join
// order, or map iteration — so every correctly configured member computes
// identical ownership. Build once with New; rebuild on membership change.
type Ring struct {
	nodes  map[string]Node
	points []ringPoint // sorted ascending by hash
}

type ringPoint struct {
	hash uint64
	id   string
}

// hash64 maps a labeled byte string onto the ring circle. SHA-256 (not a
// seeded runtime hash) keeps placement stable across processes, versions,
// and architectures; the first 8 bytes are ample for 64 vnodes per node.
func hash64(kind, s string) uint64 {
	sum := sha256.Sum256([]byte(kind + ":" + s))
	return binary.BigEndian.Uint64(sum[:8])
}

// New builds a ring over the given members with vnodes virtual points per
// node (<= 0 uses DefaultVNodes). Node IDs must be non-empty and unique.
func New(nodes []Node, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{nodes: make(map[string]Node, len(nodes))}
	for _, n := range nodes {
		if n.ID == "" {
			return nil, fmt.Errorf("cluster: node with empty ID")
		}
		if _, dup := r.nodes[n.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", n.ID)
		}
		r.nodes[n.ID] = n
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64("node", n.ID+"#"+strconv.Itoa(v)), id: n.ID})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id // deterministic on (astronomically unlikely) collisions
	})
	return r, nil
}

// Len returns the number of member nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the members sorted by ID.
func (r *Ring) Nodes() []Node {
	out := make([]Node, 0, len(r.nodes))
	for _, n := range r.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Node looks up a member by ID.
func (r *Ring) Node(id string) (Node, bool) {
	n, ok := r.nodes[id]
	return n, ok
}

// Owner returns the node that owns key: the first virtual point at or after
// the key's hash, walking the circle clockwise.
func (r *Ring) Owner(key string) Node {
	return r.Replicas(key, 1)[0]
}

// Replicas returns up to n distinct nodes for key in failover order: the
// owner first, then the next distinct nodes clockwise around the ring. n
// larger than the membership returns every node exactly once. All members
// agree on this order, so a coordinator retrying a pair after a node death
// lands it where any other coordinator would.
func (r *Ring) Replicas(key string, n int) []Node {
	if n <= 0 || n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hash64("key", key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]Node, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.id] {
			continue
		}
		seen[p.id] = true
		out = append(out, r.nodes[p.id])
	}
	return out
}
