package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/ems"
)

func testPairs(n int) []Pair {
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{Name: fmt.Sprintf("p%d", i), Key: fmt.Sprintf("key-%d", i)}
	}
	return pairs
}

func TestCoordinatorRunsEveryPairOnItsOwner(t *testing.T) {
	ring := threeNodeRing(t)
	pairs := testPairs(20)
	var mu sync.Mutex
	ranOn := map[string]string{}
	c := &Coordinator{
		Ring: ring,
		Run: func(ctx context.Context, node Node, pair Pair) (*ems.Result, error) {
			mu.Lock()
			ranOn[pair.Name] = node.ID
			mu.Unlock()
			return &ems.Result{}, nil
		},
	}
	out := c.Execute(context.Background(), pairs)
	for i, pr := range out {
		if pr.Err != nil {
			t.Fatalf("pair %d failed: %v", i, pr.Err)
		}
		if pr.Name != pairs[i].Name {
			t.Fatalf("pair %d out of order: got %q want %q", i, pr.Name, pairs[i].Name)
		}
		if pr.Attempts != 1 {
			t.Fatalf("pair %d took %d attempts without any failure", i, pr.Attempts)
		}
		want := ring.Owner(pairs[i].Key).ID
		if ranOn[pr.Name] != want || pr.Node != want {
			t.Fatalf("pair %q ran on %s/%s, owner is %s", pr.Name, ranOn[pr.Name], pr.Node, want)
		}
	}
}

func TestCoordinatorBoundsPerNodeInflight(t *testing.T) {
	ring := threeNodeRing(t)
	var mu sync.Mutex
	cur, peak := map[string]int{}, map[string]int{}
	c := &Coordinator{
		Ring:         ring,
		NodeInflight: 2,
		Run: func(ctx context.Context, node Node, pair Pair) (*ems.Result, error) {
			mu.Lock()
			cur[node.ID]++
			if cur[node.ID] > peak[node.ID] {
				peak[node.ID] = cur[node.ID]
			}
			mu.Unlock()
			time.Sleep(2 * time.Millisecond)
			mu.Lock()
			cur[node.ID]--
			mu.Unlock()
			return &ems.Result{}, nil
		},
	}
	c.Execute(context.Background(), testPairs(60))
	for node, p := range peak {
		if p > 2 {
			t.Errorf("node %s peaked at %d in-flight pairs, bound is 2", node, p)
		}
	}
}

// TestCoordinatorFailover: a dead owner's pairs land on the next replica,
// the failover hook fires, and healthy owners are untouched.
func TestCoordinatorFailover(t *testing.T) {
	ring := threeNodeRing(t)
	pairs := testPairs(30)
	dead := ring.Owner(pairs[0].Key).ID
	var failovers atomic.Int64
	c := &Coordinator{
		Ring: ring,
		OnFailover: func(node Node, pair Pair, err error) {
			if node.ID != dead {
				t.Errorf("failover away from healthy node %s", node.ID)
			}
			failovers.Add(1)
		},
		Run: func(ctx context.Context, node Node, pair Pair) (*ems.Result, error) {
			if node.ID == dead {
				return nil, &UnavailableError{Node: node.ID, Op: "test", Err: errors.New("connection refused")}
			}
			return &ems.Result{}, nil
		},
	}
	out := c.Execute(context.Background(), pairs)
	sawFailover := false
	for i, pr := range out {
		if pr.Err != nil {
			t.Fatalf("pair %d failed despite two healthy replicas: %v", i, pr.Err)
		}
		if pr.Node == dead {
			t.Fatalf("pair %d reported success on the dead node", i)
		}
		owner := ring.Owner(pairs[i].Key).ID
		if owner == dead {
			sawFailover = true
			if pr.Attempts != 2 {
				t.Errorf("pair %d owned by dead node finished in %d attempts, want 2", i, pr.Attempts)
			}
			if want := ring.Replicas(pairs[i].Key, 2)[1].ID; pr.Node != want {
				t.Errorf("pair %d failed over to %s, want next replica %s", i, pr.Node, want)
			}
		} else if pr.Attempts != 1 {
			t.Errorf("pair %d with healthy owner took %d attempts", i, pr.Attempts)
		}
	}
	if !sawFailover {
		t.Fatal("test is vacuous: no sampled pair was owned by the dead node")
	}
	if failovers.Load() == 0 {
		t.Fatal("failover hook never fired")
	}
}

// TestCoordinatorSkipsKnownDownNodes: health knowledge short-circuits the
// attempt entirely — the runner is never invoked for a down node while
// another replica remains.
func TestCoordinatorSkipsKnownDownNodes(t *testing.T) {
	ring := threeNodeRing(t)
	pairs := testPairs(30)
	dead := ring.Owner(pairs[0].Key).ID
	deadNode, _ := ring.Node(dead)
	health := NewHealth([]*Client{NewClient(deadNode, time.Second)}, nil)
	health.ReportFailure(dead, errors.New("probe failed"))
	c := &Coordinator{
		Ring:   ring,
		Health: health,
		Run: func(ctx context.Context, node Node, pair Pair) (*ems.Result, error) {
			if node.ID == dead {
				t.Errorf("runner invoked for known-down node on pair %q", pair.Name)
			}
			return &ems.Result{}, nil
		},
	}
	for _, pr := range c.Execute(context.Background(), pairs) {
		if pr.Err != nil {
			t.Fatalf("pair %q failed: %v", pr.Name, pr.Err)
		}
	}
}

// TestCoordinatorTerminalErrorDoesNotFailOver: a healthy peer rejecting the
// job (bad input) must not burn the other replicas on the same bad input.
func TestCoordinatorTerminalErrorDoesNotFailOver(t *testing.T) {
	ring := threeNodeRing(t)
	var runs atomic.Int64
	c := &Coordinator{
		Ring: ring,
		Run: func(ctx context.Context, node Node, pair Pair) (*ems.Result, error) {
			runs.Add(1)
			return nil, &RemoteError{Node: node.ID, Code: 400, Msg: "bad input"}
		},
	}
	out := c.Execute(context.Background(), testPairs(1))
	if out[0].Err == nil {
		t.Fatal("terminal error lost")
	}
	var re *RemoteError
	if !errors.As(out[0].Err, &re) {
		t.Fatalf("error type lost: %v", out[0].Err)
	}
	if runs.Load() != 1 {
		t.Fatalf("terminal error was retried %d times", runs.Load())
	}
}

func TestCoordinatorAllReplicasDown(t *testing.T) {
	ring := threeNodeRing(t)
	c := &Coordinator{
		Ring: ring,
		Run: func(ctx context.Context, node Node, pair Pair) (*ems.Result, error) {
			return nil, &UnavailableError{Node: node.ID, Op: "test", Err: errors.New("refused")}
		},
	}
	out := c.Execute(context.Background(), testPairs(1))
	if out[0].Err == nil {
		t.Fatal("pair succeeded with every replica down")
	}
	if out[0].Attempts != 3 {
		t.Fatalf("tried %d replicas, want all 3", out[0].Attempts)
	}
}

func TestCoordinatorCancellation(t *testing.T) {
	ring := threeNodeRing(t)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	c := &Coordinator{
		Ring:         ring,
		NodeInflight: 1,
		Run: func(ctx context.Context, node Node, pair Pair) (*ems.Result, error) {
			started <- struct{}{}
			<-ctx.Done()
			return nil, fmt.Errorf("aborted: %w", ctx.Err())
		},
	}
	done := make(chan []PairResult, 1)
	go func() { done <- c.Execute(ctx, testPairs(12)) }()
	<-started
	cancel()
	select {
	case out := <-done:
		failed := 0
		for _, pr := range out {
			if pr.Err != nil {
				failed++
			}
		}
		if failed != len(out) {
			t.Fatalf("only %d/%d pairs report the cancellation", failed, len(out))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Execute did not return after cancellation")
	}
}
