// Package chaos is the central fault-injection registry: one seeded,
// declarative schedule drives every failpoint the codebase exposes —
// engine rounds (internal/core), WAL writes, fsyncs and segment creation
// (internal/journal), and peer HTTP exchanges (internal/cluster).
//
// A Schedule is a seed plus an ordered rule list. Each rule names a point,
// a fault to inject there, and when to fire (skip the first After hits,
// fire at most Count times, fire each eligible hit with probability Prob).
// Randomness is deterministic: rule i draws from its own PRNG seeded with
// Seed+i, so the same schedule against the same workload injects the same
// faults — the property the chaos suite's replay target depends on.
//
// Schedules serialize as JSON (see ParseSchedule) so CI can replay a
// committed schedule file byte-for-byte:
//
//	{
//	  "seed": 2014,
//	  "rules": [
//	    {"point": "journal.sync", "fault": "enospc", "after": 3, "count": 2},
//	    {"point": "engine.round", "fault": "delay", "delay_ms": 5, "prob": 0.5},
//	    {"point": "peer.call", "fault": "http-503", "node": "node-b", "count": 1}
//	  ]
//	}
package chaos

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/journal"
)

// Point names an injectable fault site.
type Point string

const (
	// EngineRound fires at the start of every similarity iteration round.
	// Faults: "delay" (slow round), "panic" (crash the computation — the
	// server's panic containment and checkpoint retry absorb it).
	EngineRound Point = "engine.round"
	// JournalWrite fires before a WAL record frame is written.
	// Faults: "torn" (half-written frame), "enospc", "error".
	JournalWrite Point = "journal.write"
	// JournalSync fires before a WAL fsync. Faults: "enospc", "error".
	JournalSync Point = "journal.sync"
	// JournalCreate fires before a WAL segment is created (rotation,
	// compaction). Faults: "enospc", "error".
	JournalCreate Point = "journal.create"
	// PeerCall fires before a peer HTTP exchange. Faults: "timeout"
	// (transport error), "http-503", "flap" (alternating 503/pass),
	// "delay".
	PeerCall Point = "peer.call"
)

// Points lists every registered injection site.
func Points() []Point {
	return []Point{EngineRound, JournalWrite, JournalSync, JournalCreate, PeerCall}
}

// Rule arms one fault at one point.
type Rule struct {
	Point Point `json:"point"`
	// Fault selects the effect; the zero value means the point's default
	// ("error" for journal points, "delay" for engine rounds, "timeout"
	// for peer calls).
	Fault string `json:"fault,omitempty"`
	// Prob fires the rule on each eligible hit with this probability;
	// 0 means always.
	Prob float64 `json:"prob,omitempty"`
	// After skips the first N hits of the point (armed from hit N+1 on).
	After int `json:"after,omitempty"`
	// Count bounds how many times the rule fires; 0 means unlimited.
	Count int `json:"count,omitempty"`
	// DelayMS is the stall for "delay" faults (and is added before any
	// other fault when set).
	DelayMS int `json:"delay_ms,omitempty"`
	// Node restricts a peer.call rule to one node ID; empty matches all.
	Node string `json:"node,omitempty"`
}

// Schedule is a complete, deterministic chaos plan.
type Schedule struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// ParseSchedule decodes a JSON schedule and validates every rule.
func ParseSchedule(data []byte) (*Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("chaos: parse schedule: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func (s *Schedule) validate() error {
	if len(s.Rules) == 0 {
		return errors.New("chaos: schedule has no rules")
	}
	for i, r := range s.Rules {
		known := false
		for _, p := range Points() {
			if r.Point == p {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("chaos: rule %d: unknown point %q", i, r.Point)
		}
		if r.Prob < 0 || r.Prob > 1 {
			return fmt.Errorf("chaos: rule %d: prob %v out of [0,1]", i, r.Prob)
		}
		if _, err := faultFor(r); err != nil {
			return fmt.Errorf("chaos: rule %d: %w", i, err)
		}
	}
	return nil
}

// ErrInjected is the base error of generic injected faults, so tests can
// errors.Is their way to "this failure was ours".
var ErrInjected = errors.New("chaos: injected fault")

// newRuleRNG builds rule i's private random stream: seeded with Seed+i so
// every rule draws independently yet reproducibly.
func newRuleRNG(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(i)))
}

// armedRule is one rule plus its firing state. Failpoint hooks run from
// many goroutines; mu guards the counters and the rule's private PRNG.
type armedRule struct {
	Rule
	mu    sync.Mutex
	rng   *rand.Rand
	hits  int
	fired int
}

// fire decides — deterministically given the hit sequence — whether this
// rule triggers on the current hit.
func (a *armedRule) fire() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.hits++
	if a.hits <= a.After {
		return false
	}
	if a.Count > 0 && a.fired >= a.Count {
		return false
	}
	if a.Prob > 0 && a.Prob < 1 && a.rng.Float64() >= a.Prob {
		return false
	}
	a.fired++
	return true
}

// flapOpen reports the current half-cycle of a "flap" fault: odd firings
// fail, even firings pass.
func (a *armedRule) flapOpen() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.fired%2 == 1
}

// Activate installs the schedule into every underlying failpoint registry
// and returns a restore function that uninstalls all of them. Only one
// schedule should be active at a time (failpoints are process-global).
func (s *Schedule) Activate() (restore func(), err error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	armed := make([]*armedRule, len(s.Rules))
	for i, r := range s.Rules {
		armed[i] = &armedRule{Rule: r, rng: newRuleRNG(s.Seed, i)}
	}
	byPoint := func(p Point) []*armedRule {
		var out []*armedRule
		for _, a := range armed {
			if a.Point == p {
				out = append(out, a)
			}
		}
		return out
	}

	var restores []func()
	if rules := byPoint(EngineRound); len(rules) > 0 {
		restores = append(restores, core.SetFailpoint(func(round int) {
			for _, a := range rules {
				if !a.fire() {
					continue
				}
				applyEngineFault(a, round)
				return
			}
		}))
	}
	jw, js, jc := byPoint(JournalWrite), byPoint(JournalSync), byPoint(JournalCreate)
	if len(jw)+len(js)+len(jc) > 0 {
		restores = append(restores, journal.SetFailpoint(func(op journal.Op) error {
			var rules []*armedRule
			switch op {
			case journal.OpWrite:
				rules = jw
			case journal.OpSync:
				rules = js
			case journal.OpCreate:
				rules = jc
			}
			for _, a := range rules {
				if !a.fire() {
					continue
				}
				return journalFault(a)
			}
			return nil
		}))
	}
	if rules := byPoint(PeerCall); len(rules) > 0 {
		restores = append(restores, cluster.SetFailpoint(func(node, method, path string) *cluster.PeerFault {
			for _, a := range rules {
				if a.Node != "" && a.Node != node {
					continue
				}
				if !a.fire() {
					continue
				}
				return peerFault(a)
			}
			return nil
		}))
	}
	return func() {
		for i := len(restores) - 1; i >= 0; i-- {
			restores[i]()
		}
	}, nil
}

// faultFor validates a rule's fault name against its point.
func faultFor(r Rule) (string, error) {
	f := r.Fault
	switch r.Point {
	case EngineRound:
		if f == "" {
			f = "delay"
		}
		if f != "delay" && f != "panic" {
			return "", fmt.Errorf("fault %q not valid at %s", f, r.Point)
		}
	case JournalWrite:
		if f == "" {
			f = "error"
		}
		if f != "error" && f != "enospc" && f != "torn" {
			return "", fmt.Errorf("fault %q not valid at %s", f, r.Point)
		}
	case JournalSync, JournalCreate:
		if f == "" {
			f = "error"
		}
		if f != "error" && f != "enospc" {
			return "", fmt.Errorf("fault %q not valid at %s", f, r.Point)
		}
	case PeerCall:
		if f == "" {
			f = "timeout"
		}
		if f != "timeout" && f != "http-503" && f != "flap" && f != "delay" {
			return "", fmt.Errorf("fault %q not valid at %s", f, r.Point)
		}
	}
	return f, nil
}

func applyEngineFault(a *armedRule, round int) {
	f, _ := faultFor(a.Rule)
	switch f {
	case "panic":
		panic(fmt.Sprintf("chaos: injected engine panic at round %d", round))
	default: // delay
		d := time.Duration(a.DelayMS) * time.Millisecond
		if d <= 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
	}
}

func journalFault(a *armedRule) error {
	if a.DelayMS > 0 {
		time.Sleep(time.Duration(a.DelayMS) * time.Millisecond)
	}
	f, _ := faultFor(a.Rule)
	switch f {
	case "torn":
		return journal.ErrShortWrite
	case "enospc":
		return fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)
	default:
		return fmt.Errorf("%w at %s", ErrInjected, a.Point)
	}
}

func peerFault(a *armedRule) *cluster.PeerFault {
	pf := &cluster.PeerFault{Delay: time.Duration(a.DelayMS) * time.Millisecond}
	f, _ := faultFor(a.Rule)
	switch f {
	case "timeout":
		pf.Err = fmt.Errorf("%w: peer timeout", ErrInjected)
	case "http-503":
		pf.Status = 503
		pf.Body = []byte(`{"error": "chaos: injected overload"}`)
	case "flap":
		if a.flapOpen() {
			pf.Status = 503
			pf.Body = []byte(`{"error": "chaos: flapping peer"}`)
		}
	case "delay":
		if pf.Delay <= 0 {
			pf.Delay = time.Millisecond
		}
	}
	if pf.Err == nil && pf.Status == 0 && pf.Delay <= 0 {
		return nil
	}
	return pf
}
