package chaos

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"

	"repro/ems"
	"repro/internal/cluster"
	"repro/internal/journal"
	"repro/internal/paperexample"
)

func TestParseScheduleValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"empty rules", `{"seed": 1, "rules": []}`},
		{"unknown point", `{"seed": 1, "rules": [{"point": "disk.seek"}]}`},
		{"prob out of range", `{"seed": 1, "rules": [{"point": "engine.round", "prob": 1.5}]}`},
		{"negative prob", `{"seed": 1, "rules": [{"point": "engine.round", "prob": -0.1}]}`},
		{"fault wrong for point", `{"seed": 1, "rules": [{"point": "engine.round", "fault": "enospc"}]}`},
		{"torn outside write", `{"seed": 1, "rules": [{"point": "journal.sync", "fault": "torn"}]}`},
		{"peer fault on journal", `{"seed": 1, "rules": [{"point": "journal.write", "fault": "http-503"}]}`},
		{"not json", `{"seed": `},
	}
	for _, tc := range cases {
		if _, err := ParseSchedule([]byte(tc.json)); err == nil {
			t.Errorf("%s: schedule accepted, want error", tc.name)
		}
	}

	good := `{
		"seed": 2014,
		"rules": [
			{"point": "journal.sync", "fault": "enospc", "after": 3, "count": 2},
			{"point": "engine.round", "fault": "delay", "delay_ms": 5, "prob": 0.5},
			{"point": "peer.call", "fault": "http-503", "node": "node-b", "count": 1}
		]
	}`
	s, err := ParseSchedule([]byte(good))
	if err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if s.Seed != 2014 || len(s.Rules) != 3 {
		t.Errorf("parsed seed=%d rules=%d, want 2014/3", s.Seed, len(s.Rules))
	}
}

// TestFireAfterCountSemantics pins the arming window: After skips, Count
// bounds, and an exhausted rule never fires again.
func TestFireAfterCountSemantics(t *testing.T) {
	a := &armedRule{Rule: Rule{Point: EngineRound, After: 3, Count: 2}, rng: newRuleRNG(0, 0)}
	var fires []int
	for hit := 1; hit <= 10; hit++ {
		if a.fire() {
			fires = append(fires, hit)
		}
	}
	if len(fires) != 2 || fires[0] != 4 || fires[1] != 5 {
		t.Errorf("fired on hits %v, want [4 5] (After=3, Count=2)", fires)
	}
}

// TestFireDeterministicReplay is the property the chaos suite's replay
// target depends on: the same rule under the same seed fires on exactly the
// same hits, every run, while a different seed draws a different pattern.
func TestFireDeterministicReplay(t *testing.T) {
	const hits = 500
	pattern := func(seed int64, idx int) []bool {
		a := &armedRule{Rule: Rule{Point: EngineRound, Prob: 0.5}, rng: newRuleRNG(seed, idx)}
		out := make([]bool, hits)
		for i := range out {
			out[i] = a.fire()
		}
		return out
	}
	p1, p2 := pattern(2014, 0), pattern(2014, 0)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same seed diverged at hit %d", i+1)
		}
	}
	p3 := pattern(2015, 0)
	same := true
	for i := range p1 {
		if p1[i] != p3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 2014 and 2015 produced identical 500-hit patterns")
	}
	// Rules draw from per-index streams: rule 0 and rule 1 of one schedule
	// must not fire in lockstep.
	p4 := pattern(2014, 1)
	same = true
	for i := range p1 {
		if p1[i] != p4[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("rule indexes 0 and 1 share one random stream")
	}
}

// TestActivateJournalFaultsReplayIdentically drives a real journal through
// an activated schedule twice and requires the injected failure pattern —
// which appends fail, and with what — to be byte-for-byte identical. This is
// the end-to-end determinism contract: seeded schedule in, reproducible
// fault sequence out.
func TestActivateJournalFaultsReplayIdentically(t *testing.T) {
	sched := &Schedule{
		Seed: 2014,
		Rules: []Rule{
			{Point: JournalWrite, Fault: "enospc", After: 2, Count: 1},
			{Point: JournalWrite, Fault: "torn", After: 6, Count: 1},
			{Point: JournalSync, Fault: "error", Prob: 0.3},
		},
	}
	const appends = 24
	run := func() []string {
		restore, err := sched.Activate()
		if err != nil {
			t.Fatalf("Activate: %v", err)
		}
		defer restore()
		j, _, err := journal.Open(t.TempDir(), journal.Options{})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer j.Close()
		var outcomes []string
		for i := 0; i < appends; i++ {
			err := j.Append([]byte(fmt.Sprintf("record-%02d", i)))
			switch {
			case err == nil:
				outcomes = append(outcomes, "ok")
			case errors.Is(err, syscall.ENOSPC):
				outcomes = append(outcomes, "enospc")
			case errors.Is(err, journal.ErrShortWrite):
				outcomes = append(outcomes, "torn")
			case errors.Is(err, ErrInjected):
				outcomes = append(outcomes, "injected")
			default:
				t.Fatalf("append %d: unexpected non-injected error: %v", i, err)
			}
		}
		return outcomes
	}

	first := run()
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at append %d: %q vs %q\nfirst:  %v\nsecond: %v",
				i, first[i], second[i], first, second)
		}
	}
	// The count-bounded rules must actually have fired.
	count := func(of []string, kind string) int {
		n := 0
		for _, o := range of {
			if o == kind {
				n++
			}
		}
		return n
	}
	if count(first, "enospc") != 1 {
		t.Errorf("enospc fired %d times, want exactly 1 (Count=1)", count(first, "enospc"))
	}
	if count(first, "torn") != 1 {
		t.Errorf("torn fired %d times, want exactly 1 (Count=1)", count(first, "torn"))
	}
	if count(first, "ok") == 0 {
		t.Error("every append failed; the journal never recovered between faults")
	}
}

// TestActivatePeerFaults covers the peer.call faults through a real
// cluster.Client: a count-bounded 503, a flapping peer alternating
// fail/pass, and the Node filter leaving other peers untouched.
func TestActivatePeerFaults(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"governor": "ok", "load": 0}`)
	}))
	defer backend.Close()

	sched := &Schedule{
		Seed: 7,
		Rules: []Rule{
			{Point: PeerCall, Fault: "http-503", Node: "node-b", Count: 1},
			{Point: PeerCall, Fault: "flap", Node: "node-c"},
		},
	}
	restore, err := sched.Activate()
	if err != nil {
		t.Fatalf("Activate: %v", err)
	}
	defer restore()

	ctx := t.Context()
	client := func(id string) *cluster.Client {
		return cluster.NewClient(cluster.Node{ID: id, Addr: backend.URL}, 0)
	}

	// node-a matches no rule: always healthy.
	if err := client("node-a").Healthy(ctx); err != nil {
		t.Errorf("unfaulted peer reported unhealthy: %v", err)
	}
	// node-b: exactly one injected 503, then clean.
	b := client("node-b")
	if err := b.Healthy(ctx); !cluster.IsUnavailable(err) {
		t.Errorf("first node-b probe: got %v, want injected unavailable", err)
	}
	if err := b.Healthy(ctx); err != nil {
		t.Errorf("second node-b probe after Count=1 exhausted: %v", err)
	}
	// node-c flaps: odd firings fail, even firings pass.
	c := client("node-c")
	for i, wantErr := range []bool{true, false, true, false} {
		err := c.Healthy(ctx)
		if wantErr && !cluster.IsUnavailable(err) {
			t.Errorf("flap probe %d: got %v, want unavailable", i+1, err)
		}
		if !wantErr && err != nil {
			t.Errorf("flap probe %d: got %v, want success", i+1, err)
		}
	}
}

// TestActivateEngineDelayPreservesResults arms a slow-round fault over a
// full matching run: the injection may stretch wall time but must never
// change a single similarity value.
func TestActivateEngineDelayPreservesResults(t *testing.T) {
	want, err := ems.Match(paperexample.Log1(), paperexample.Log2())
	if err != nil {
		t.Fatalf("baseline match: %v", err)
	}

	sched := &Schedule{
		Seed:  2014,
		Rules: []Rule{{Point: EngineRound, Fault: "delay", DelayMS: 1, Prob: 0.5}},
	}
	restore, err := sched.Activate()
	if err != nil {
		t.Fatalf("Activate: %v", err)
	}
	defer restore()

	got, err := ems.Match(paperexample.Log1(), paperexample.Log2())
	if err != nil {
		t.Fatalf("match under chaos: %v", err)
	}
	if len(got.Sim) != len(want.Sim) {
		t.Fatalf("sim length %d, want %d", len(got.Sim), len(want.Sim))
	}
	for i := range want.Sim {
		if math.Float64bits(want.Sim[i]) != math.Float64bits(got.Sim[i]) {
			t.Fatalf("sim[%d] = %v, want %v: a delay fault changed the result", i, got.Sim[i], want.Sim[i])
		}
	}
}
