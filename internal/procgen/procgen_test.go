package procgen

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/eventlog"
)

func TestGenerateLeafCount(t *testing.T) {
	for _, n := range []int{1, 2, 5, 20, 50} {
		rng := rand.New(rand.NewSource(int64(n)))
		spec, err := Generate(rng, DefaultOptions(n))
		if err != nil {
			t.Fatalf("Generate(%d): %v", n, err)
		}
		if got := len(spec.Activities); got != n {
			t.Errorf("activities = %d, want %d", got, n)
		}
		if got := countLeaves(spec.Root); got != n {
			t.Errorf("leaves = %d, want %d", got, n)
		}
	}
}

func countLeaves(n *Node) int {
	if n.Kind == Activity {
		return 1
	}
	total := 0
	for _, c := range n.Children {
		total += countLeaves(c)
	}
	return total
}

func TestGenerateRejectsZeroActivities(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(rng, DefaultOptions(0)); err == nil {
		t.Errorf("zero activities accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s1, err := Generate(rand.New(rand.NewSource(7)), DefaultOptions(15))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Generate(rand.New(rand.NewSource(7)), DefaultOptions(15))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Root.String() != s2.Root.String() {
		t.Errorf("same seed produced different trees:\n%s\n%s", s1.Root, s2.Root)
	}
}

func TestActivityNamesDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	names := ActivityNames(rng, 100)
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate activity name %q", n)
		}
		seen[n] = true
	}
}

func TestPlayoutTraceCount(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	spec, err := Generate(rng, DefaultOptions(10))
	if err != nil {
		t.Fatal(err)
	}
	po := DefaultPlayout()
	po.Traces = 37
	l, err := spec.Playout(rng, "log", po)
	if err != nil {
		t.Fatalf("Playout: %v", err)
	}
	if l.Len() != 37 {
		t.Errorf("traces = %d, want 37", l.Len())
	}
	if err := l.Validate(); err != nil {
		t.Errorf("playout produced invalid log: %v", err)
	}
}

func TestPlayoutAlphabetSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	spec, err := Generate(rng, DefaultOptions(12))
	if err != nil {
		t.Fatal(err)
	}
	l, err := spec.Playout(rng, "log", DefaultPlayout())
	if err != nil {
		t.Fatal(err)
	}
	want := append([]string(nil), spec.Activities...)
	sort.Strings(want)
	for _, e := range l.Alphabet() {
		if idx := sort.SearchStrings(want, e); idx >= len(want) || want[idx] != e {
			t.Errorf("alphabet contains unknown event %q", e)
		}
	}
}

func TestPlayoutRejectsBadOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	spec, _ := Generate(rng, DefaultOptions(3))
	if _, err := spec.Playout(rng, "x", PlayoutOptions{Traces: 0}); err == nil {
		t.Errorf("zero traces accepted")
	}
}

func TestSeqPreservesOrder(t *testing.T) {
	n := &Node{Kind: Seq, Children: []*Node{
		{Kind: Activity, Label: "a"},
		{Kind: Activity, Label: "b"},
		{Kind: Activity, Label: "c"},
	}}
	rng := rand.New(rand.NewSource(1))
	got := (&simulator{rng: rng, opts: DefaultPlayout()}).run(n)
	if !reflect.DeepEqual(got, eventlog.Trace{"a", "b", "c"}) {
		t.Errorf("Seq trace = %v", got)
	}
}

func TestXorPicksOneChild(t *testing.T) {
	n := &Node{Kind: Xor, Children: []*Node{
		{Kind: Activity, Label: "a"},
		{Kind: Activity, Label: "b"},
	}}
	rng := rand.New(rand.NewSource(1))
	sawA, sawB := false, false
	for i := 0; i < 100; i++ {
		tr := (&simulator{rng: rng, opts: DefaultPlayout()}).run(n)
		if len(tr) != 1 {
			t.Fatalf("Xor trace length %d, want 1", len(tr))
		}
		switch tr[0] {
		case "a":
			sawA = true
		case "b":
			sawB = true
		}
	}
	if !sawA || !sawB {
		t.Errorf("Xor never picked both branches: a=%v b=%v", sawA, sawB)
	}
}

func TestAndInterleavesBothOrders(t *testing.T) {
	n := &Node{Kind: And, Children: []*Node{
		{Kind: Activity, Label: "a"},
		{Kind: Activity, Label: "b"},
	}}
	rng := rand.New(rand.NewSource(1))
	orders := map[string]bool{}
	for i := 0; i < 200; i++ {
		tr := (&simulator{rng: rng, opts: DefaultPlayout()}).run(n)
		if len(tr) != 2 {
			t.Fatalf("And trace = %v", tr)
		}
		orders[tr[0]+tr[1]] = true
	}
	if !orders["ab"] || !orders["ba"] {
		t.Errorf("And produced only orders %v", orders)
	}
}

func TestAndPreservesChildOrderWithin(t *testing.T) {
	n := &Node{Kind: And, Children: []*Node{
		{Kind: Seq, Children: []*Node{
			{Kind: Activity, Label: "a1"},
			{Kind: Activity, Label: "a2"},
		}},
		{Kind: Activity, Label: "b"},
	}}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		tr := (&simulator{rng: rng, opts: DefaultPlayout()}).run(n)
		i1, i2 := indexIn(tr, "a1"), indexIn(tr, "a2")
		if i1 > i2 {
			t.Fatalf("interleaving broke intra-branch order: %v", tr)
		}
	}
}

func indexIn(tr eventlog.Trace, e string) int {
	for i, x := range tr {
		if x == e {
			return i
		}
	}
	return -1
}

func TestLoopRepeats(t *testing.T) {
	n := &Node{Kind: Loop, Children: []*Node{{Kind: Activity, Label: "a"}}}
	rng := rand.New(rand.NewSource(1))
	opts := PlayoutOptions{Traces: 1, LoopRepeat: 0.9, MaxLoop: 5}
	sawRepeat := false
	for i := 0; i < 50; i++ {
		tr := (&simulator{rng: rng, opts: opts}).run(n)
		if len(tr) > 5 {
			t.Fatalf("loop exceeded MaxLoop: %v", tr)
		}
		if len(tr) > 1 {
			sawRepeat = true
		}
	}
	if !sawRepeat {
		t.Errorf("loop never repeated at 0.9 probability")
	}
}

func TestNodeString(t *testing.T) {
	n := &Node{Kind: Seq, Children: []*Node{
		{Kind: Activity, Label: "a"},
		{Kind: Xor, Children: []*Node{
			{Kind: Activity, Label: "b"},
			{Kind: Activity, Label: "c"},
		}},
	}}
	if got := n.String(); got != "seq(a, xor(b, c))" {
		t.Errorf("String = %q", got)
	}
}

// Property: every playout trace is a valid interleaving — each activity
// appears at most MaxLoop times... in loop-free trees exactly the XOR-chosen
// subset appears once.
func TestPlayoutStableProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		opts := DefaultOptions(2 + rng.Intn(20))
		opts.LoopProb = 0 // loop-free: each activity at most once per trace
		spec, err := Generate(rng, opts)
		if err != nil {
			return false
		}
		po := DefaultPlayout()
		po.Traces = 20
		l, err := spec.Playout(rng, "p", po)
		if err != nil {
			return false
		}
		for _, tr := range l.Traces {
			seen := map[string]bool{}
			for _, e := range tr {
				if seen[e] {
					return false
				}
				seen[e] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{Activity: "activity", Seq: "seq", Xor: "xor", And: "and", Loop: "loop"}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
