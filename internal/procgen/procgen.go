// Package procgen generates random process specifications and plays them
// out into event logs. It replaces the BeehiveZ toolkit the paper uses for
// its synthetic datasets: process models are random process trees over the
// operators sequence, exclusive choice, parallel and loop, and logs are
// produced by stochastic simulation, so two logs played out from the same
// specification are observations of the same process (events with equal
// names correspond — the synthetic ground truth).
package procgen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/eventlog"
)

// Kind enumerates process-tree node kinds.
type Kind int

const (
	// Activity is a leaf: one observable event.
	Activity Kind = iota
	// Seq executes its children in order.
	Seq
	// Xor executes exactly one child, chosen at random.
	Xor
	// And executes all children concurrently (random interleaving).
	And
	// Loop executes its single child one or more times.
	Loop
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Activity:
		return "activity"
	case Seq:
		return "seq"
	case Xor:
		return "xor"
	case And:
		return "and"
	case Loop:
		return "loop"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Node is one node of a process tree.
type Node struct {
	Kind     Kind
	Label    string // event name, for Activity leaves
	Children []*Node
}

// Spec is a complete process specification.
type Spec struct {
	Root       *Node
	Activities []string
}

// Options controls random specification generation.
type Options struct {
	// Activities is the number of distinct activities (leaves). Must be >= 1.
	Activities int
	// MaxBranch caps operator fan-out (>= 2).
	MaxBranch int
	// XorWeight, AndWeight and SeqWeight are the relative odds of choosing
	// each operator for an internal node.
	XorWeight, AndWeight, SeqWeight float64
	// LoopProb is the probability of wrapping an internal node in a loop.
	LoopProb float64
}

// DefaultOptions returns a mix that produces sequence-dominated models with
// occasional choice and parallelism, resembling real administrative
// processes.
func DefaultOptions(activities int) Options {
	return Options{
		Activities: activities,
		MaxBranch:  3,
		XorWeight:  0.2,
		AndWeight:  0.2,
		SeqWeight:  0.6,
		LoopProb:   0.05,
	}
}

// Generate builds a random process tree with exactly opts.Activities leaves
// using the supplied random source.
func Generate(rng *rand.Rand, opts Options) (*Spec, error) {
	if opts.Activities < 1 {
		return nil, fmt.Errorf("procgen: Activities must be >= 1, got %d", opts.Activities)
	}
	if opts.MaxBranch < 2 {
		opts.MaxBranch = 2
	}
	if opts.XorWeight+opts.AndWeight+opts.SeqWeight <= 0 {
		opts.SeqWeight = 1
	}
	names := ActivityNames(rng, opts.Activities)
	root := build(rng, opts, names)
	return &Spec{Root: root, Activities: names}, nil
}

// ActivityNames produces n distinct pronounceable activity names, so label
// similarity experiments have realistic material to work with.
func ActivityNames(rng *rand.Rand, n int) []string {
	verbs := []string{"check", "send", "review", "approve", "ship", "pay", "create", "close", "audit", "plan", "assign", "verify", "notify", "archive", "update", "register"}
	nouns := []string{"order", "invoice", "claim", "request", "stock", "report", "contract", "ticket", "account", "delivery", "quote", "payment", "record", "case", "form", "batch"}
	seen := make(map[string]bool)
	out := make([]string, 0, n)
	for len(out) < n {
		name := verbs[rng.Intn(len(verbs))] + " " + nouns[rng.Intn(len(nouns))]
		if seen[name] {
			name = fmt.Sprintf("%s %d", name, len(out))
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

func build(rng *rand.Rand, opts Options, names []string) *Node {
	if len(names) == 1 {
		return &Node{Kind: Activity, Label: names[0]}
	}
	k := pickOperator(rng, opts)
	branches := 2
	if m := min(opts.MaxBranch, len(names)); m > 2 {
		branches = 2 + rng.Intn(m-1)
		if branches > m {
			branches = m
		}
	}
	parts := splitNames(rng, names, branches)
	node := &Node{Kind: k}
	for _, p := range parts {
		node.Children = append(node.Children, build(rng, opts, p))
	}
	if rng.Float64() < opts.LoopProb {
		node = &Node{Kind: Loop, Children: []*Node{node}}
	}
	return node
}

func pickOperator(rng *rand.Rand, opts Options) Kind {
	total := opts.XorWeight + opts.AndWeight + opts.SeqWeight
	r := rng.Float64() * total
	switch {
	case r < opts.SeqWeight:
		return Seq
	case r < opts.SeqWeight+opts.XorWeight:
		return Xor
	default:
		return And
	}
}

// splitNames partitions names into k non-empty contiguous chunks of random
// sizes.
func splitNames(rng *rand.Rand, names []string, k int) [][]string {
	if k > len(names) {
		k = len(names)
	}
	cuts := map[int]bool{}
	for len(cuts) < k-1 {
		cuts[1+rng.Intn(len(names)-1)] = true
	}
	var out [][]string
	start := 0
	for i := 1; i <= len(names); i++ {
		if i == len(names) || cuts[i] {
			out = append(out, names[start:i])
			start = i
		}
	}
	return out
}

// PlayoutOptions controls log simulation.
type PlayoutOptions struct {
	// Traces is the number of traces to simulate (>= 1).
	Traces int
	// LoopRepeat is the probability of repeating a loop body again.
	LoopRepeat float64
	// MaxLoop caps loop repetitions.
	MaxLoop int
	// XorSkew biases exclusive choices: 0 picks branches uniformly; larger
	// values draw increasingly skewed per-branch weights at playout start.
	// Two playouts of the same specification with independent skews model
	// independently implemented systems whose corresponding activities have
	// different occurrence frequencies — the statistical heterogeneity of
	// real multi-source event data.
	XorSkew float64
}

// DefaultPlayout simulates 200 traces with mild looping.
func DefaultPlayout() PlayoutOptions {
	return PlayoutOptions{Traces: 200, LoopRepeat: 0.3, MaxLoop: 3}
}

// Playout simulates the specification into an event log.
func (s *Spec) Playout(rng *rand.Rand, name string, opts PlayoutOptions) (*eventlog.Log, error) {
	if opts.Traces < 1 {
		return nil, fmt.Errorf("procgen: Traces must be >= 1, got %d", opts.Traces)
	}
	if opts.MaxLoop < 1 {
		opts.MaxLoop = 1
	}
	l := eventlog.New(name)
	sim := &simulator{rng: rng, opts: opts}
	if opts.XorSkew > 0 {
		sim.weights = make(map[*Node][]float64)
		drawXorWeights(rng, s.Root, opts.XorSkew, sim.weights)
	}
	for i := 0; i < opts.Traces; i++ {
		t := sim.run(s.Root)
		if len(t) == 0 {
			// Degenerate but possible with empty loops; retry once, then
			// fall back to the activity list to keep the log valid.
			t = sim.run(s.Root)
			if len(t) == 0 {
				t = append(eventlog.Trace(nil), s.Activities...)
			}
		}
		l.Append(t)
	}
	return l, nil
}

// simulator carries the playout state: the random source and, when XorSkew
// is enabled, the per-XOR-node branch weights drawn for this playout.
type simulator struct {
	rng     *rand.Rand
	opts    PlayoutOptions
	weights map[*Node][]float64
}

// drawXorWeights samples skewed branch weights for every XOR node.
func drawXorWeights(rng *rand.Rand, n *Node, skew float64, out map[*Node][]float64) {
	if n.Kind == Xor {
		w := make([]float64, len(n.Children))
		var sum float64
		for i := range w {
			w[i] = 0.1 + math.Pow(rng.Float64(), skew)
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
		out[n] = w
	}
	for _, c := range n.Children {
		drawXorWeights(rng, c, skew, out)
	}
}

func (s *simulator) pickBranch(n *Node) *Node {
	w, ok := s.weights[n]
	if !ok {
		return n.Children[s.rng.Intn(len(n.Children))]
	}
	r := s.rng.Float64()
	for i, wi := range w {
		if r < wi {
			return n.Children[i]
		}
		r -= wi
	}
	return n.Children[len(n.Children)-1]
}

func (s *simulator) run(n *Node) eventlog.Trace {
	switch n.Kind {
	case Activity:
		return eventlog.Trace{n.Label}
	case Seq:
		var out eventlog.Trace
		for _, c := range n.Children {
			out = append(out, s.run(c)...)
		}
		return out
	case Xor:
		return s.run(s.pickBranch(n))
	case And:
		parts := make([]eventlog.Trace, len(n.Children))
		for i, c := range n.Children {
			parts[i] = s.run(c)
		}
		return interleave(s.rng, parts)
	case Loop:
		var out eventlog.Trace
		for i := 0; i < s.opts.MaxLoop; i++ {
			out = append(out, s.run(n.Children[0])...)
			if s.rng.Float64() >= s.opts.LoopRepeat {
				break
			}
		}
		return out
	default:
		return nil
	}
}

// interleave produces a uniformly random order-preserving shuffle of the
// given sequences.
func interleave(rng *rand.Rand, parts []eventlog.Trace) eventlog.Trace {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make(eventlog.Trace, 0, total)
	idx := make([]int, len(parts))
	for len(out) < total {
		// Choose a part weighted by its remaining length so every
		// interleaving of the multiset of positions is equally likely.
		r := rng.Intn(total - len(out))
		for pi := range parts {
			rem := len(parts[pi]) - idx[pi]
			if r < rem {
				out = append(out, parts[pi][idx[pi]])
				idx[pi]++
				break
			}
			r -= rem
		}
	}
	return out
}

// String renders the tree in a compact prefix notation for diagnostics.
func (n *Node) String() string {
	if n.Kind == Activity {
		return n.Label
	}
	parts := make([]string, len(n.Children))
	for i, c := range n.Children {
		parts[i] = c.String()
	}
	return n.Kind.String() + "(" + strings.Join(parts, ", ") + ")"
}
