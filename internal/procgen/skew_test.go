package procgen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/eventlog"
)

// xorSpec builds a fixed two-branch choice for skew tests.
func xorSpec() *Spec {
	root := &Node{Kind: Xor, Children: []*Node{
		{Kind: Activity, Label: "a"},
		{Kind: Activity, Label: "b"},
	}}
	return &Spec{Root: root, Activities: []string{"a", "b"}}
}

func branchFraction(l *eventlog.Log, e string) float64 {
	st := eventlog.CollectStats(l)
	return st.NodeFreq[e]
}

func TestXorSkewZeroIsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	po := PlayoutOptions{Traces: 4000, XorSkew: 0}
	l, err := xorSpec().Playout(rng, "u", po)
	if err != nil {
		t.Fatal(err)
	}
	if f := branchFraction(l, "a"); math.Abs(f-0.5) > 0.05 {
		t.Errorf("uniform branch fraction = %.3f, want ~0.5", f)
	}
}

func TestXorSkewProducesDifferentDistributions(t *testing.T) {
	spec := xorSpec()
	po := PlayoutOptions{Traces: 2000, XorSkew: 3}
	maxGap := 0.0
	// Across several independent playouts the drawn weights differ; at
	// least one pair of playouts must disagree notably on branch a.
	var fracs []float64
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l, err := spec.Playout(rng, "s", po)
		if err != nil {
			t.Fatal(err)
		}
		fracs = append(fracs, branchFraction(l, "a"))
	}
	for i := range fracs {
		for j := i + 1; j < len(fracs); j++ {
			if g := math.Abs(fracs[i] - fracs[j]); g > maxGap {
				maxGap = g
			}
		}
	}
	if maxGap < 0.15 {
		t.Errorf("skewed playouts too similar: fractions %v", fracs)
	}
}

func TestXorSkewStableWithinOnePlayout(t *testing.T) {
	// Weights are drawn once per playout: splitting one playout's traces
	// in half must give similar branch fractions.
	rng := rand.New(rand.NewSource(9))
	po := PlayoutOptions{Traces: 4000, XorSkew: 3}
	l, err := xorSpec().Playout(rng, "s", po)
	if err != nil {
		t.Fatal(err)
	}
	half := l.Len() / 2
	first := &eventlog.Log{Name: "h1", Traces: l.Traces[:half]}
	second := &eventlog.Log{Name: "h2", Traces: l.Traces[half:]}
	f1 := branchFraction(first, "a")
	f2 := branchFraction(second, "a")
	if math.Abs(f1-f2) > 0.06 {
		t.Errorf("branch fraction drifted within one playout: %.3f vs %.3f", f1, f2)
	}
}
