package assignment

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaximizeSimple(t *testing.T) {
	// Clear diagonal optimum.
	m := []float64{
		0.9, 0.1, 0.1,
		0.1, 0.8, 0.2,
		0.2, 0.1, 0.7,
	}
	pairs, err := Maximize(m, 3, 3)
	if err != nil {
		t.Fatalf("Maximize: %v", err)
	}
	if len(pairs) != 3 {
		t.Fatalf("got %d pairs, want 3", len(pairs))
	}
	for _, p := range pairs {
		if p.I != p.J {
			t.Errorf("pair %v off-diagonal", p)
		}
	}
}

func TestMaximizePrefersTotalOverGreedy(t *testing.T) {
	// Greedy would take (0,0)=0.9 forcing (1,1)=0.1 for total 1.0;
	// optimal is (0,1)+(1,0) = 0.8+0.8 = 1.6.
	m := []float64{
		0.9, 0.8,
		0.8, 0.1,
	}
	pairs, err := Maximize(m, 2, 2)
	if err != nil {
		t.Fatalf("Maximize: %v", err)
	}
	var total float64
	for _, p := range pairs {
		total += p.Value
	}
	if math.Abs(total-1.6) > 1e-9 {
		t.Errorf("total = %g, want 1.6 (got %v)", total, pairs)
	}
}

func TestMaximizeRectangular(t *testing.T) {
	// 2 rows, 3 cols: only 2 pairs selected.
	m := []float64{
		0.1, 0.9, 0.2,
		0.3, 0.8, 0.7,
	}
	pairs, err := Maximize(m, 2, 3)
	if err != nil {
		t.Fatalf("Maximize: %v", err)
	}
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs, want 2", len(pairs))
	}
	var total float64
	cols := map[int]bool{}
	for _, p := range pairs {
		total += p.Value
		if cols[p.J] {
			t.Fatalf("column %d used twice", p.J)
		}
		cols[p.J] = true
	}
	if math.Abs(total-1.6) > 1e-9 { // (0,1)=0.9 + (1,2)=0.7
		t.Errorf("total = %g, want 1.6", total)
	}
}

func TestMaximizeTallMatrix(t *testing.T) {
	m := []float64{
		0.9,
		0.8,
		0.7,
	}
	pairs, err := Maximize(m, 3, 1)
	if err != nil {
		t.Fatalf("Maximize: %v", err)
	}
	if len(pairs) != 1 {
		t.Fatalf("got %d pairs, want 1", len(pairs))
	}
	if pairs[0].I != 0 || pairs[0].Value != 0.9 {
		t.Errorf("pair = %v, want row 0 value 0.9", pairs[0])
	}
}

func TestMaximizeEmpty(t *testing.T) {
	pairs, err := Maximize(nil, 0, 0)
	if err != nil || pairs != nil {
		t.Errorf("empty = %v, %v; want nil, nil", pairs, err)
	}
}

func TestMaximizeErrors(t *testing.T) {
	if _, err := Maximize([]float64{1, 2}, 1, 1); err == nil {
		t.Errorf("size mismatch accepted")
	}
	if _, err := Maximize([]float64{math.NaN()}, 1, 1); err == nil {
		t.Errorf("NaN accepted")
	}
	if _, err := Maximize([]float64{math.Inf(1)}, 1, 1); err == nil {
		t.Errorf("Inf accepted")
	}
}

// Property: the Hungarian result matches brute force on small random
// matrices.
func TestMaximizeOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := make([]float64, n*n)
		for i := range m {
			m[i] = math.Round(rng.Float64()*100) / 100
		}
		pairs, err := Maximize(m, n, n)
		if err != nil || len(pairs) != n {
			return false
		}
		var total float64
		for _, p := range pairs {
			total += p.Value
		}
		best := bruteForce(m, n)
		return math.Abs(total-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func bruteForce(m []float64, n int) float64 {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(-1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			var s float64
			for i, j := range perm {
				s += m[i*n+j]
			}
			if s > best {
				best = s
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}
