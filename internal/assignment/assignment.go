// Package assignment implements the Hungarian (Munkres/Kuhn) algorithm for
// the linear assignment problem. The paper uses it as the "maximum total
// similarity selection method" [Munkres 1957] that turns a pair-wise
// similarity matrix into 1:1 event correspondences.
package assignment

import (
	"fmt"
	"math"
)

// Pair is one selected correspondence: row i matched to column j with the
// given value from the input matrix.
type Pair struct {
	I, J  int
	Value float64
}

// Maximize solves the assignment problem on the rows-by-cols row-major
// matrix m, selecting min(rows, cols) pairs with maximum total value. Values
// must be finite. The returned pairs are sorted by row index.
func Maximize(m []float64, rows, cols int) ([]Pair, error) {
	if rows < 0 || cols < 0 || len(m) != rows*cols {
		return nil, fmt.Errorf("assignment: matrix size %d does not match %dx%d", len(m), rows, cols)
	}
	if rows == 0 || cols == 0 {
		return nil, nil
	}
	for _, v := range m {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("assignment: matrix contains non-finite value %v", v)
		}
	}
	// Convert to a minimization problem on a square matrix padded with
	// zero-cost dummy rows/columns.
	n := max(rows, cols)
	maxVal := 0.0
	for _, v := range m {
		if v > maxVal {
			maxVal = v
		}
	}
	cost := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i < rows && j < cols {
				cost[i*n+j] = maxVal - m[i*cols+j]
			}
		}
	}
	colOf := hungarianMin(cost, n)
	var out []Pair
	for i := 0; i < rows; i++ {
		j := colOf[i]
		if j < cols {
			out = append(out, Pair{I: i, J: j, Value: m[i*cols+j]})
		}
	}
	return out, nil
}

// hungarianMin solves the square n x n minimization assignment problem and
// returns, for each row, its assigned column. It is the O(n^3) shortest
// augmenting path formulation with dual potentials.
func hungarianMin(cost []float64, n int) []int {
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j] = row assigned to column j (1-based)
	way := make([]int, n+1) // predecessor columns on the augmenting path
	minv := make([]float64, n+1)
	used := make([]bool, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[(i0-1)*n+(j-1)] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}
	colOf := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			colOf[p[j]-1] = j - 1
		}
	}
	return colOf
}
