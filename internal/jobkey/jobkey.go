// Package jobkey computes the content-addressed identity of one match
// computation. The key is shared infrastructure: the emsd result cache
// (dedup and in-flight coalescing), the on-disk result store, and the
// cluster's consistent-hash ring all address work by it, so two nodes — or
// two submissions — with identical inputs always agree on the same key.
//
// The format is part of the persistence and cluster wire contract: results
// are stored on disk under the key, and ring placement hashes it. It must
// therefore stay stable across versions; jobkey_test.go pins the exact
// digest for a known input.
package jobkey

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/eventlog"
)

// Compute identifies a match computation by content: a SHA-256 over both
// logs' traces and the canonical option string, hex-encoded. Two
// submissions with identical trace content and options share a key
// regardless of log names, file paths, or the transport the logs arrived
// by. The two logs are not interchangeable: swapping them changes the key.
func Compute(log1, log2 *eventlog.Log, optionKey string) string {
	h := sha256.New()
	hashLog := func(l *eventlog.Log) {
		fmt.Fprintf(h, "log:%d\n", l.Len())
		for _, t := range l.Traces {
			for _, e := range t {
				h.Write([]byte(e))
				h.Write([]byte{0})
			}
			h.Write([]byte{'\n'})
		}
	}
	hashLog(log1)
	hashLog(log2)
	h.Write([]byte("opts:"))
	h.Write([]byte(optionKey))
	return hex.EncodeToString(h.Sum(nil))
}
