package jobkey

import (
	"testing"

	"repro/internal/eventlog"
)

func mkLog(t *testing.T, name string, traces ...eventlog.Trace) *eventlog.Log {
	t.Helper()
	l := eventlog.New(name)
	for _, tr := range traces {
		l.Append(tr)
	}
	return l
}

// TestComputePinnedFormat pins the exact key for a known input. The key
// format is a persistence and cluster wire contract: on-disk results are
// stored under it and ring placement hashes it, so a change here silently
// orphans every persisted result and reshuffles cluster ownership. If this
// test fails, you changed the format — don't update the constant without a
// migration story.
func TestComputePinnedFormat(t *testing.T) {
	l1 := mkLog(t, "a", eventlog.Trace{"A", "B", "C"}, eventlog.Trace{"A", "C"})
	l2 := mkLog(t, "b", eventlog.Trace{"1", "2"})
	const want = "8ebad4e691d2536adc1aa5079a11097b4bb9eacea5f31a875915efbc58b8a4c7"
	got := Compute(l1, l2, "alpha=1 labels=false estimate=-1 threshold=0.1 minfreq=0 delta=0.005 composite=false")
	if got != want {
		t.Fatalf("pinned key changed:\n got  %s\n want %s", got, want)
	}
}

func TestComputeContentAddressing(t *testing.T) {
	l1 := mkLog(t, "a", eventlog.Trace{"A", "B"})
	l2 := mkLog(t, "b", eventlog.Trace{"X"})
	base := Compute(l1, l2, "opts")

	if Compute(l1, l2, "opts") != base {
		t.Fatal("key is not deterministic")
	}
	// Log names are transport metadata, not content.
	renamed := mkLog(t, "other-name", eventlog.Trace{"A", "B"})
	if Compute(renamed, l2, "opts") != base {
		t.Fatal("renaming a log changed the key")
	}
	if Compute(l1, l2, "opts2") == base {
		t.Fatal("changing options kept the key")
	}
	if Compute(l2, l1, "opts") == base {
		t.Fatal("swapping the logs kept the key (sides are not interchangeable)")
	}
	mutated := mkLog(t, "a", eventlog.Trace{"A", "Z"})
	if Compute(mutated, l2, "opts") == base {
		t.Fatal("changing trace content kept the key")
	}
}

// TestComputeTraceBoundaries guards the framing: the same event characters
// split differently across events or traces must not collide.
func TestComputeTraceBoundaries(t *testing.T) {
	l2 := mkLog(t, "b", eventlog.Trace{"X"})
	x := mkLog(t, "x", eventlog.Trace{"AB", "C"})
	y := mkLog(t, "y", eventlog.Trace{"A", "BC"})
	if Compute(x, l2, "o") == Compute(y, l2, "o") {
		t.Fatal("event boundary collision")
	}
	u := mkLog(t, "u", eventlog.Trace{"A"}, eventlog.Trace{"B"})
	v := mkLog(t, "v", eventlog.Trace{"A", "B"})
	if Compute(u, l2, "o") == Compute(v, l2, "o") {
		t.Fatal("trace boundary collision")
	}
}
