// Consensus: reconcile contradictory matchings.
//
// The paper's motivating project employed 49 human integrators whose manual
// correspondence checks were "inaccurate and contradictory". The same
// happens with automatic matchers run under different configurations: each
// has blind spots, and their outputs conflict. This example matches one
// heterogeneous pair under several configurations and merges the results
// with a quorum-based consensus, which beats most individual runs.
//
// Run with: go run ./examples/consensus
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/ems"
	"repro/internal/dataset"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	pair, err := dataset.GeneratePair(rng, "consensus", dataset.Options{
		Events:         18,
		Traces:         150,
		OpaqueFraction: 0.6,
		ExtraFront:     1,
		ExtraBack:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	configs := []struct {
		name string
		opts []ems.Option
	}{
		{"structure only", nil},
		{"with labels", []ems.Option{
			ems.WithAlpha(0.7), ems.WithLabelSimilarity(ems.QGramCosine(3)),
		}},
		{"forward only", []ems.Option{ems.WithDirection(ems.Forward)}},
		{"backward only", []ems.Option{ems.WithDirection(ems.Backward)}},
		{"greedy selection", []ems.Option{ems.WithSelectionStrategy(ems.SelectGreedy)}},
	}

	var mappings []ems.Mapping
	fmt.Println("individual configurations:")
	for _, cfg := range configs {
		res, err := ems.Match(pair.Log1, pair.Log2, cfg.opts...)
		if err != nil {
			log.Fatal(err)
		}
		mappings = append(mappings, res.Mapping)
		q := ems.Evaluate(res.Mapping, pair.Truth)
		fmt.Printf("  %-18s precision=%.3f recall=%.3f f=%.3f\n",
			cfg.name, q.Precision, q.Recall, q.FMeasure)
	}

	for _, quorum := range []int{2, 3} {
		merged, err := ems.Consensus(mappings, quorum)
		if err != nil {
			log.Fatal(err)
		}
		q := ems.Evaluate(merged, pair.Truth)
		fmt.Printf("consensus (quorum %d): precision=%.3f recall=%.3f f=%.3f (%d correspondences)\n",
			quorum, q.Precision, q.Recall, q.FMeasure, len(merged))
	}
}
