// Streaming: keep correspondences fresh as new traces arrive.
//
// The paper's deployment feeds a business process data warehouse that
// ingests event data continuously. Recomputing every matching from scratch
// on each batch wastes the previous fixpoint: the EMS similarity is a
// contraction (Theorem 1 uniqueness), so iteration warm-started from the
// last result converges in a fraction of the rounds.
//
// This example streams batches of traces into one side of a Matcher and
// compares warm-started rematching against cold starts.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/ems"
	"repro/internal/dataset"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	pair, err := dataset.GeneratePair(rng, "stream", dataset.Options{
		Events:         18,
		Traces:         150,
		OpaqueFraction: 1.0,
		ExtraFront:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Start the matcher with only the first half of log 2; the rest
	// arrives in batches.
	half := pair.Log2.Len() / 2
	initial := ems.NewLog(pair.Log2.Name)
	initial.Traces = pair.Log2.Traces[:half]
	m, err := ems.NewMatcher(pair.Log1, initial)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	res, err := m.Rematch()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial match:  %2d rounds, %6d evaluations, f=%.3f  (%v)\n",
		res.Rounds, res.Evaluations, ems.Evaluate(res.Mapping, pair.Truth).FMeasure,
		time.Since(start).Round(time.Microsecond))

	const batch = 15
	for i := half; i < pair.Log2.Len(); i += batch {
		end := min(i+batch, pair.Log2.Len())
		if err := m.Append(2, pair.Log2.Traces[i:end]...); err != nil {
			log.Fatal(err)
		}
		start = time.Now()
		res, err = m.Rematch()
		if err != nil {
			log.Fatal(err)
		}
		q := ems.Evaluate(res.Mapping, pair.Truth)
		fmt.Printf("+%2d traces:     %2d rounds, %6d evaluations, f=%.3f  (%v)\n",
			end-i, res.Rounds, res.Evaluations, q.FMeasure,
			time.Since(start).Round(time.Microsecond))
	}

	// A cold start on the final logs, for comparison.
	l1, l2 := m.Logs()
	start = time.Now()
	cold, err := ems.Match(l1, l2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold start:     %2d rounds, %6d evaluations, f=%.3f  (%v)\n",
		cold.Rounds, cold.Evaluations, ems.Evaluate(cold.Mapping, pair.Truth).FMeasure,
		time.Since(start).Round(time.Microsecond))
}
