// Turbine order processing: the running example of the paper (Figure 1).
//
// Two subsidiaries of a bus manufacturer process turbine orders. Log 2 has
// three of the paper's challenges at once:
//
//   - an opaque event "??????" (garbled encoding; really "Delivery"),
//   - a dislocated start (an extra "Order Accepted" step before payment),
//   - a composite event "Inventory Checking & Validation" that corresponds
//     to the two events "Check Inventory" + "Validate" of log 1.
//
// The example shows how composite matching recovers the full ground truth:
// A->2, B->3, {C,D}->4, E->5, F->6 in the paper's notation.
//
// Run with: go run ./examples/turbine
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/ems"
)

func main() {
	// Log 1: 40% of orders paid by cash, 60% by credit card; shipping and
	// the customer email happen concurrently.
	log1 := ems.NewLog("subsidiary-1")
	for i := 0; i < 4; i++ {
		log1.Append(ems.Trace{"Paid by Cash", "Check Inventory", "Validate", "Ship Goods", "Email Customer"})
	}
	for i := 0; i < 6; i++ {
		log1.Append(ems.Trace{"Paid by Credit Card", "Check Inventory", "Validate", "Email Customer", "Ship Goods"})
	}

	// Log 2: every order starts with an acceptance step (the dislocation);
	// inventory checking and validation are one combined step; the
	// delivery event's name is garbled.
	log2 := ems.NewLog("subsidiary-2")
	for i := 0; i < 4; i++ {
		log2.Append(ems.Trace{"Order Accepted", "Paid by Cash", "Inventory Checking & Validation", "??????", "Email"})
	}
	for i := 0; i < 6; i++ {
		log2.Append(ems.Trace{"Order Accepted", "Paid by Credit Card", "Inventory Checking & Validation", "Email", "??????"})
	}

	// Structure-only matching first (alpha = 1): the garbled name is no
	// obstacle because only dependency-graph statistics are used.
	res, err := ems.MatchComposite(log1, log2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("accepted composite events:")
	for _, g := range res.Composites1 {
		fmt.Printf("  log 1: {%s}\n", strings.Join(g, " + "))
	}
	for _, g := range res.Composites2 {
		fmt.Printf("  log 2: {%s}\n", strings.Join(g, " + "))
	}

	fmt.Println("\ncorrespondences:")
	for _, c := range res.Mapping {
		fmt.Printf("  %s\n", c)
	}

	// The paper's headline: the dislocated event "Paid by Cash" must align
	// with log 2's "Paid by Cash" (mid-trace), not with "Order Accepted"
	// (trace-initial).
	cash2, _ := res.Similarity("Paid by Cash", "Paid by Cash")
	cash1, _ := res.Similarity("Paid by Cash", "Order Accepted")
	fmt.Printf("\nsim(Paid by Cash, Paid by Cash)  = %.3f\n", cash2)
	fmt.Printf("sim(Paid by Cash, Order Accepted) = %.3f\n", cash1)
	if cash2 > cash1 {
		fmt.Println("dislocated matching solved: payment aligned despite the extra acceptance step")
	}
}
