// Provenance: query traces across heterogeneous logs.
//
// The paper's warehouse exists to answer questions like "how was this
// turbine order processed in the other subsidiary?". The pipeline is:
// match events (EMS with composite support), build a trace aligner from
// the mapping, then search the other log for the most similar traces and
// print a step-by-step alignment.
//
// Run with: go run ./examples/provenance
package main

import (
	"fmt"
	"log"

	"repro/ems"
)

func main() {
	// The paper's Figure 1 logs: turbine order processing in two
	// subsidiaries (dislocated start, opaque delivery event, composite
	// inventory step).
	log1 := ems.NewLog("subsidiary-1")
	for i := 0; i < 4; i++ {
		log1.Append(ems.Trace{"Paid by Cash", "Check Inventory", "Validate", "Ship Goods", "Email Customer"})
	}
	for i := 0; i < 6; i++ {
		log1.Append(ems.Trace{"Paid by Credit Card", "Check Inventory", "Validate", "Email Customer", "Ship Goods"})
	}
	log2 := ems.NewLog("subsidiary-2")
	for i := 0; i < 4; i++ {
		log2.Append(ems.Trace{"Order Accepted", "Paid by Cash", "Inventory Checking & Validation", "??????", "Email"})
	}
	for i := 0; i < 6; i++ {
		log2.Append(ems.Trace{"Order Accepted", "Paid by Credit Card", "Inventory Checking & Validation", "Email", "??????"})
	}

	res, err := ems.MatchComposite(log1, log2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("event correspondences:")
	for _, c := range res.Mapping {
		fmt.Printf("  %s\n", c)
	}

	aligner, err := ems.NewAligner(res.Mapping)
	if err != nil {
		log.Fatal(err)
	}

	query := log1.Traces[0] // a cash order from subsidiary 1
	fmt.Printf("\nquery trace (subsidiary 1): %s\n", query)
	hits := aligner.Search(query, log2, 2)
	for _, h := range hits {
		fmt.Printf("\nsubsidiary-2 trace #%d (similarity %.2f):\n%s\n",
			h.Index, h.Similarity, h.Alignment)
	}
}
