// Warehouse integration: batch-match many heterogeneous log pairs.
//
// The paper's motivating deployment integrates the OA systems of 31
// subsidiaries into one business process data warehouse; thousands of
// process variants must be aligned automatically. This example synthesizes
// a batch of heterogeneous pairs (opaque names, dislocated traces,
// composite events), matches each one with exact EMS and with the fast
// estimation (Algorithm 1, I = 3), and reports accuracy against the known
// generative ground truth — a miniature of the paper's Figure 3/5 protocol.
//
// Run with: go run ./examples/warehouse
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/ems"
	"repro/internal/dataset"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	var pairs []*dataset.Pair
	for i := 0; i < 8; i++ {
		p, err := dataset.GeneratePair(rng, fmt.Sprintf("process-%02d", i), dataset.Options{
			Events:          16,
			Traces:          150,
			OpaqueFraction:  0.7,
			ExtraFront:      1,
			CompositeMerges: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		pairs = append(pairs, p)
	}

	configs := []struct {
		name string
		opts []ems.Option
	}{
		{"EMS exact", nil},
		{"EMS+es I=3", []ems.Option{ems.WithEstimation(3)}},
		{"EMS+labels", []ems.Option{
			ems.WithAlpha(0.7),
			ems.WithLabelSimilarity(ems.QGramCosine(3)),
		}},
	}

	fmt.Printf("%-12s  %-9s  %-9s  %-9s  %s\n", "config", "precision", "recall", "f-measure", "time")
	for _, cfg := range configs {
		var p, r, f float64
		start := time.Now()
		for _, pair := range pairs {
			res, err := ems.MatchComposite(pair.Log1, pair.Log2, cfg.opts...)
			if err != nil {
				log.Fatal(err)
			}
			q := ems.Evaluate(res.Mapping, pair.Truth)
			p += q.Precision
			r += q.Recall
			f += q.FMeasure
		}
		n := float64(len(pairs))
		fmt.Printf("%-12s  %-9.3f  %-9.3f  %-9.3f  %v\n",
			cfg.name, p/n, r/n, f/n, time.Since(start).Round(time.Millisecond))
	}
}
