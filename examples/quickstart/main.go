// Quickstart: match the events of two small heterogeneous logs.
//
// Two subsidiaries record the same ordering process. The second system uses
// opaque event names and an extra intake step, so neither names nor
// positions line up — the situation the EMS similarity is built for.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/ems"
)

func main() {
	// Subsidiary A: orders are paid by cash (40%) or by card (60%), then
	// stock is checked, then shipping and invoicing finish in either order.
	logA := ems.NewLog("subsidiary-a")
	for i := 0; i < 4; i++ {
		logA.Append(ems.Trace{"pay cash", "check stock", "ship", "invoice"})
	}
	for i := 0; i < 6; i++ {
		logA.Append(ems.Trace{"pay card", "check stock", "invoice", "ship"})
	}

	// Subsidiary B records the same work with garbled names (a legacy
	// system with a broken encoding) and an extra "accept" intake step
	// before payment — the dislocation.
	logB := ems.NewLog("subsidiary-b")
	for i := 0; i < 4; i++ {
		logB.Append(ems.Trace{"accept", "x-cash", "x-stock", "x-ship", "x-inv"})
	}
	for i := 0; i < 6; i++ {
		logB.Append(ems.Trace{"accept", "x-card", "x-stock", "x-inv", "x-ship"})
	}

	res, err := ems.Match(logA, logB)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("selected correspondences:")
	for _, c := range res.Mapping {
		fmt.Printf("  %s\n", c)
	}

	// The dislocated first event: "pay cash" must match the opaque
	// "x-cash", not the extra "accept" step that only exists in B.
	cash, _ := res.Similarity("pay cash", "x-cash")
	acc, _ := res.Similarity("pay cash", "accept")
	fmt.Printf("\nsim(pay cash, x-cash) = %.3f   <- true correspondence\n", cash)
	fmt.Printf("sim(pay cash, accept) = %.3f   <- extra step, ranked lower\n", acc)
}
