// Tuning: explore the accuracy/efficiency trade-offs of the matcher.
//
// The paper exposes three speed knobs, each trading accuracy for time:
//
//   - the estimation iteration count I (Section 3.5, Figure 5),
//   - the minimum edge-frequency filter (Section 2, Figure 7),
//   - early-convergence pruning (Section 3.4, Figure 6 — free accuracy-wise).
//
// This example sweeps all three on one synthetic pair and prints how
// f-measure, similarity evaluations and wall time respond.
//
// Run with: go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/ems"
	"repro/internal/dataset"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	pair, err := dataset.GeneratePair(rng, "tuning", dataset.Options{
		Events:         24,
		Traces:         200,
		OpaqueFraction: 1.0,
		ExtraFront:     1,
		ExtraBack:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	measure := func(name string, opts ...ems.Option) {
		start := time.Now()
		res, err := ems.Match(pair.Log1, pair.Log2, opts...)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		q := ems.Evaluate(res.Mapping, pair.Truth)
		fmt.Printf("%-22s  f=%.3f  evaluations=%-7d  time=%v\n",
			name, q.FMeasure, res.Evaluations, elapsed.Round(time.Microsecond))
	}

	fmt.Println("estimation iterations (Figure 5):")
	for _, i := range []int{0, 1, 3, 5, 10} {
		measure(fmt.Sprintf("  I=%d", i), ems.WithEstimation(i))
	}
	measure("  exact (MAX)")

	fmt.Println("\nminimum frequency filter (Figure 7):")
	for _, th := range []float64{0, 0.05, 0.15, 0.25} {
		measure(fmt.Sprintf("  min-freq=%.2f", th), ems.WithMinFrequency(th))
	}

	fmt.Println("\nearly-convergence pruning (Figure 6):")
	measure("  pruned (default)")
	measure("  unpruned", ems.WithoutPruning())
}
