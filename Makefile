# Developer entry points. `make check` is the gate new changes must pass:
# vet plus the full test suite under the race detector.

GO ?= go

.PHONY: all build test race vet lint check bench fuzz-smoke bench-core bench-regress crash-test cluster-test repair-test chaos-test trace-test profile metrics-check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race tests get an explicit budget: a deadlock in the cancellation or
# shutdown paths should fail the build, not hang it.
RACE_TIMEOUT ?= 10m

race:
	$(GO) test -race -timeout $(RACE_TIMEOUT) ./...

# Static analysis beyond vet. staticcheck and govulncheck are optional
# locally (skipped with a note when absent); CI installs both.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping"; \
	fi

check: vet lint race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Crash-safety suite under the race detector: journal torn-tail recovery,
# engine checkpoint/resume equivalence, and the emsd kill-and-restart tests.
crash-test:
	$(GO) test -race -timeout $(RACE_TIMEOUT) ./internal/journal
	$(GO) test -race -timeout $(RACE_TIMEOUT) -run 'Checkpoint|Restore' ./internal/core ./ems
	$(GO) test -race -timeout $(RACE_TIMEOUT) -run 'KillAndRestart|Restart|Retry|CrashLoop|StatsExpose' ./internal/server

# Clustering suite under the race detector (ring placement, peer forwarding,
# batch failover), then a live smoke: boot three loopback emsd processes as a
# full mesh and run a 2x2 POST /v1/batch grid through node-a end to end.
CLUSTER_A ?= 127.0.0.1:18591
CLUSTER_B ?= 127.0.0.1:18592
CLUSTER_C ?= 127.0.0.1:18593

cluster-test:
	$(GO) test -race -timeout $(RACE_TIMEOUT) ./internal/jobkey ./internal/cluster
	$(GO) test -race -timeout $(RACE_TIMEOUT) -run 'TestCluster|TestBatch|TestJobsList' ./internal/server
	@tmp=$$(mktemp -d); \
	trap 'kill $$pa $$pb $$pc 2>/dev/null; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/emsd ./cmd/emsd || exit 1; \
	$$tmp/emsd -addr $(CLUSTER_A) -node-id node-a -advertise http://$(CLUSTER_A) \
		-peers node-b=http://$(CLUSTER_B),node-c=http://$(CLUSTER_C) \
		>$$tmp/a.log 2>&1 & pa=$$!; \
	$$tmp/emsd -addr $(CLUSTER_B) -node-id node-b -advertise http://$(CLUSTER_B) \
		-peers node-a=http://$(CLUSTER_A),node-c=http://$(CLUSTER_C) \
		>$$tmp/b.log 2>&1 & pb=$$!; \
	$$tmp/emsd -addr $(CLUSTER_C) -node-id node-c -advertise http://$(CLUSTER_C) \
		-peers node-a=http://$(CLUSTER_A),node-b=http://$(CLUSTER_B) \
		>$$tmp/c.log 2>&1 & pc=$$!; \
	for h in $(CLUSTER_A) $(CLUSTER_B) $(CLUSTER_C); do \
		for i in $$(seq 1 100); do \
			curl -sf http://$$h/healthz >/dev/null && break; sleep 0.1; \
		done; \
	done; \
	body='{"logs1":[{"csv":"case,event\nc1,A\nc1,C\n"},{"csv":"case,event\nc1,A\nc1,B\nc1,C\n"}],"logs2":[{"csv":"case,event\nc1,1\nc1,2\n"},{"csv":"case,event\nc1,1\nc1,3\n"}]}'; \
	id=$$(curl -sf -X POST http://$(CLUSTER_A)/v1/batch -d "$$body" \
		| sed -n 's/.*"id": *"\([^"]*\)".*/\1/p'); \
	test -n "$$id" || { echo "cluster-test: batch submit failed"; cat $$tmp/a.log; exit 1; }; \
	for i in $$(seq 1 300); do \
		status=$$(curl -sf http://$(CLUSTER_A)/v1/batch/$$id \
			| sed -n 's/.*"status": *"\([^"]*\)".*/\1/p' | head -n 1); \
		case $$status in done) break;; failed|cancelled) break;; esac; sleep 0.1; \
	done; \
	if [ "$$status" != done ]; then \
		echo "cluster-test: batch ended $$status"; cat $$tmp/a.log $$tmp/b.log $$tmp/c.log; exit 1; \
	fi; \
	curl -sf http://$(CLUSTER_A)/metrics | grep -q '^emsd_peer_forwards_total' \
		|| { echo "cluster-test: no per-peer forward counters on /metrics"; exit 1; }; \
	echo "cluster-test: 3-node batch grid ok (batch $$id done)"

# Dirty-log resilience suite under the race detector — the repair pipeline
# and lenient readers, then their integration seams in ems, emsd, and
# emsmatch — followed by a quick-scale run of the noise-robustness
# experiment so the EMS+repair rows stay reproducible end to end.
repair-test:
	$(GO) test -race -timeout $(RACE_TIMEOUT) ./internal/repair ./internal/eventlog
	$(GO) test -race -timeout $(RACE_TIMEOUT) -run 'Repair|Lenient' ./ems ./internal/server ./cmd/emsmatch
	$(GO) run ./cmd/emsbench -robustness

# Overload-resilience suite under the race detector: the chaos registry's
# determinism and fault wiring, the resource governor / degradation ladder /
# shed paths, the cost model's 2x accuracy contract, and the kill-and-restart
# run that replays the committed seeded schedule
# (internal/server/testdata/chaos_replay.json) byte for byte.
chaos-test:
	$(GO) test -race -timeout $(RACE_TIMEOUT) ./internal/chaos
	$(GO) test -race -timeout $(RACE_TIMEOUT) -run 'Chaos|Governor|Ladder|Saturat|Degrade|TooLarge|RetryAfter|EstimateCost' \
		./internal/server ./internal/core

# Distributed-tracing suite under the race detector: the span model, the
# propagation header, the per-node trace store and flight recorder, then the
# server-level end-to-end checks — cross-node trace assembly over a 3-node
# loopback cluster, the forwarded-request-ID pin, and the flight-recorder
# chaos replay (internal/server/testdata/flightrec_replay.json) whose dumps
# must be byte-identical run to run.
trace-test:
	$(GO) test -race -timeout $(RACE_TIMEOUT) -run 'Trace|Span|Flight' ./internal/obs
	$(GO) test -race -timeout $(RACE_TIMEOUT) \
		-run 'Trace|FlightRecorder|ForwardedSubmission' ./internal/server

# Short fuzz runs over every fuzz target; CI uses this as a smoke test.
# Each target needs its own invocation: `go test -fuzz` accepts exactly one.
FUZZTIME ?= 10s

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadCSV$$' -fuzztime $(FUZZTIME) ./internal/eventlog
	$(GO) test -run '^$$' -fuzz '^FuzzReadXES$$' -fuzztime $(FUZZTIME) ./internal/eventlog
	$(GO) test -run '^$$' -fuzz '^FuzzReadXML$$' -fuzztime $(FUZZTIME) ./internal/eventlog
	$(GO) test -run '^$$' -fuzz '^FuzzQGramCosine$$' -fuzztime $(FUZZTIME) ./internal/label
	$(GO) test -run '^$$' -fuzz '^FuzzLevenshtein$$' -fuzztime $(FUZZTIME) ./internal/label
	$(GO) test -run '^$$' -fuzz '^FuzzReadResultJSON$$' -fuzztime $(FUZZTIME) ./ems

# Core-engine scaling benchmark: serial vs N-worker wall time on a fixed
# synthetic pair, written as a machine-readable trajectory point.
bench-core:
	$(GO) run ./cmd/emsbench -json BENCH_core.json

# Wall-clock regression gate: re-measure the benchmark pair and fail when
# exact-serial or fast-path-serial wall time regressed more than 25% against
# the committed trajectory point. Timing-sensitive by nature — run it on a
# quiet machine and never under the race detector (the TestBenchRegress
# harness skips itself under -short and -race for the same reason).
bench-regress:
	$(GO) run ./cmd/emsbench -regress BENCH_core.json

# CPU and heap profiles of the core benchmark, ready for `go tool pprof`:
#   go tool pprof profiles/cpu.pprof
profile:
	mkdir -p profiles
	$(GO) run ./cmd/emsbench -json profiles/bench.json -bench-reps 1 \
		-cpuprofile profiles/cpu.pprof -memprofile profiles/heap.pprof
	@echo "profiles written to ./profiles (inspect with: go tool pprof profiles/cpu.pprof)"

# Scrape gate: boot emsd, run one job, then validate every line of the live
# /metrics exposition with the binary's own checker. Fails on any malformed
# line or if a whole instrument kind (counter/gauge/histogram) is missing.
METRICS_ADDR ?= 127.0.0.1:18484

metrics-check:
	@tmp=$$(mktemp -d); \
	trap 'kill $$pid 2>/dev/null; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/emsd ./cmd/emsd || exit 1; \
	$$tmp/emsd -addr $(METRICS_ADDR) >$$tmp/emsd.log 2>&1 & pid=$$!; \
	for i in $$(seq 1 100); do \
		curl -sf http://$(METRICS_ADDR)/healthz >/dev/null && break; sleep 0.1; \
	done; \
	curl -sf -X POST http://$(METRICS_ADDR)/v1/jobs \
		-d '{"log1":{"csv":"case,event\nc1,A\nc1,C\n"},"log2":{"csv":"case,event\nc1,1\nc1,2\n"}}' \
		>/dev/null || { cat $$tmp/emsd.log; exit 1; }; \
	sleep 1; \
	$$tmp/emsd -check-metrics http://$(METRICS_ADDR)/metrics || { cat $$tmp/emsd.log; exit 1; }
