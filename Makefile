# Developer entry points. `make check` is the gate new changes must pass:
# vet plus the full test suite under the race detector.

GO ?= go

.PHONY: all build test race vet check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
